// obs::MetricRegistry: named counters, gauges, log2-bucket streaming
// histograms and sampled wall-clock timers — the sensing layer under the
// engines. Design constraints, in order:
//
//   1. Zero overhead when off. "Off" exists at two levels: the CMake
//      option PPFS_METRICS=OFF compiles every PPFS_METRIC() hot-path hook
//      to nothing, and with metrics compiled in, a system whose
//      set_metrics() was never called keeps null handles, so each hook is
//      one predictable branch. Instrumentation must NEVER consume Rng
//      draws or change control flow: a metrics-on run follows the exact
//      interaction trajectory of a metrics-off run.
//
//   2. Mergeable, like exp::AggregateStats. Per-replica registries fold
//      associatively (counters sum, histogram buckets sum, gauges keep
//      the max), so telemetry rides the existing deterministic
//      trial-order fold of the experiment layer.
//
//   3. Stable handles + deterministic iteration. Metrics live in
//      std::map (node-based: inserting never moves existing entries), so
//      systems resolve a Counter*/Histogram* once at set_metrics() time
//      and snapshots serialize in name order.
//
// Wall-clock timers are the one non-deterministic instrument. They are
// sampled (one timed event per 2^shift, counter-based — never RNG-based)
// and are excluded by default from deterministic artifacts (flight
// recorder timelines, exp extras).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#ifndef PPFS_METRICS
#define PPFS_METRICS 1
#endif

// PPFS_METRIC(handle, call): the hot-path hook. `handle` is a cached
// pointer member resolved by set_metrics() (null until then); `call` is
// the member call to make on it, e.g.
//
//   PPFS_METRIC(m_leap_len_, record(skipped));
//
// Compiles to nothing under PPFS_METRICS=OFF; to `if (h) h->record(..)`
// when on. Arguments are NOT evaluated when compiled out — keep them free
// of side effects.
#if PPFS_METRICS
#define PPFS_METRIC(handle, ...)           \
  do {                                     \
    if (handle) (handle)->__VA_ARGS__;     \
  } while (0)
#else
#define PPFS_METRIC(handle, ...) \
  do {                           \
  } while (0)
#endif

// Sampled-timer bracket around a phase. `var` names a local holding the
// begin() stamp; both sides compile out together under PPFS_METRICS=OFF.
//
//   PPFS_TIMER_BEGIN(t0, m_time_fire_);
//   ... phase ...
//   PPFS_TIMER_END(t0, m_time_fire_);
#if PPFS_METRICS
#define PPFS_TIMER_BEGIN(var, handle) \
  const std::int64_t var = (handle) ? (handle)->begin() : 0
#define PPFS_TIMER_END(var, handle)    \
  do {                                 \
    if (handle) (handle)->end(var);    \
  } while (0)
#else
#define PPFS_TIMER_BEGIN(var, handle) \
  do {                                \
  } while (0)
#define PPFS_TIMER_END(var, handle) \
  do {                              \
  } while (0)
#endif

namespace ppfs::obs {

// Monotonic event count. merge() sums.
class Counter {
 public:
  void add(std::uint64_t k = 1) noexcept { value_ += k; }
  void set(std::uint64_t v) noexcept { value_ = v; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void merge(const Counter& o) noexcept { value_ += o.value_; }
  friend bool operator==(const Counter&, const Counter&) = default;

 private:
  std::uint64_t value_ = 0;
};

// Point-in-time level (universe size, remaining budget). merge() keeps
// the max — the only associative, order-insensitive fold for levels.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }
  void merge(const Gauge& o) noexcept { value_ = std::max(value_, o.value_); }
  friend bool operator==(const Gauge&, const Gauge&) = default;

 private:
  double value_ = 0.0;
};

// Streaming histogram over log2 buckets: value v lands in bucket
// bit_width(v), so bucket 0 holds exactly {0}, bucket b >= 1 holds
// [2^(b-1), 2^b). 65 buckets cover all of uint64. record() is a handful
// of arithmetic ops — cheap enough for hot paths; merge() sums buckets
// (exact, integer counts).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v) noexcept {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
    min_ = count_ == 1 ? v : std::min(min_, v);
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  // Smallest value that lands in bucket b (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const { return buckets_.at(b); }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const noexcept {
    return buckets_;
  }

  void merge(const Histogram& o) noexcept {
    if (o.count_ == 0) return;
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    max_ = std::max(max_, o.max_);
    min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
    count_ += o.count_;
    sum_ += o.sum_;
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = 0;
};

// Sampled wall-clock phase timer: times one event in 2^sample_shift
// (counter-based, so the sampling decision costs one increment + mask and
// never touches the Rng), scales the measured nanoseconds back up in
// estimated_seconds(). shift 0 times every event — reserve that for
// per-slice phases, not per-fire ones. Timings are wall-clock and hence
// non-deterministic; they never enter fingerprints, extras or default
// flight-recorder timelines.
class SampledTimer {
 public:
  explicit SampledTimer(unsigned sample_shift = 6) noexcept
      : mask_((std::uint64_t{1} << sample_shift) - 1) {}

  // Returns 0 for unsampled events (end() then ignores them).
  [[nodiscard]] std::int64_t begin() noexcept {
    return (events_++ & mask_) == 0 ? now_ns() : 0;
  }
  void end(std::int64_t t0) noexcept {
    if (t0 == 0) return;
    ++sampled_;
    ns_ += now_ns() - t0;
  }

  [[nodiscard]] std::uint64_t events() const noexcept { return events_; }
  [[nodiscard]] std::uint64_t sampled() const noexcept { return sampled_; }
  [[nodiscard]] double sampled_seconds() const noexcept {
    return static_cast<double>(ns_) * 1e-9;
  }
  // Total-phase estimate: measured time scaled by events/sampled.
  [[nodiscard]] double estimated_seconds() const noexcept {
    if (sampled_ == 0) return 0.0;
    return sampled_seconds() * (static_cast<double>(events_) /
                                static_cast<double>(sampled_));
  }

  void merge(const SampledTimer& o) noexcept {
    events_ += o.events_;
    sampled_ += o.sampled_;
    ns_ += o.ns_;
  }

 private:
  [[nodiscard]] static std::int64_t now_ns() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::uint64_t mask_;
  std::uint64_t events_ = 0;
  std::uint64_t sampled_ = 0;
  std::int64_t ns_ = 0;
};

// The registry: named metric families with stable addresses. Lookup by
// name is a map walk — done once per run at set_metrics() time; the hot
// path only ever touches the returned pointers.
class MetricRegistry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name) {
    return counters_[name];
  }
  [[nodiscard]] Gauge& gauge(const std::string& name) { return gauges_[name]; }
  [[nodiscard]] Histogram& histogram(const std::string& name) {
    return histograms_[name];
  }
  [[nodiscard]] SampledTimer& timer(const std::string& name,
                                    unsigned sample_shift = 6) {
    return timers_.try_emplace(name, SampledTimer(sample_shift)).first->second;
  }

  [[nodiscard]] const std::map<std::string, Counter>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge>& gauges() const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }
  [[nodiscard]] const std::map<std::string, SampledTimer>& timers()
      const noexcept {
    return timers_;
  }

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           timers_.empty();
  }

  // Associative fold; names union, values merge per kind.
  void merge(const MetricRegistry& o);

  // One line per metric, name-sorted — debugging / golden-file friendly.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const MetricRegistry& a, const MetricRegistry& b) {
    return a.counters_ == b.counters_ && a.gauges_ == b.gauges_ &&
           a.histograms_ == b.histograms_;
    // timers are wall-clock noise, excluded from equality by design
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, SampledTimer> timers_;
};

}  // namespace ppfs::obs

#include "obs/flight_recorder.hpp"

#include <ostream>
#include <sstream>

namespace ppfs::obs {

namespace {

// State labels come from Protocol::state_name — plain identifiers in
// practice, but escape defensively.
void append_json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out << c;
  }
  out << '"';
}

void append_double(std::ostringstream& out, double v) {
  std::ostringstream num;
  num.precision(12);
  num << v;
  out << num.str();
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions opt)
    : opt_(opt), next_(opt.every) {
  if (opt_.every == 0) opt_.every = next_ = 1;
}

void FlightRecorder::record(const MetricRegistry& reg,
                            const ConfigSummary& summary) {
  const std::uint64_t i = summary.interactions;
  const std::uint64_t di = i - last_interactions_;

  std::ostringstream out;
  out << "{\"i\":" << i << ",\"di\":" << di
      << ",\"states\":" << summary.distinct_states;

  if (di > 0) {
    const double disp =
        (static_cast<double>(summary.distinct_states) -
         static_cast<double>(last_distinct_)) /
        static_cast<double>(di);
    out << ",\"disp\":";
    append_double(out, disp);
  }

  out << ",\"top\":[";
  {
    bool first = true;
    std::size_t emitted = 0;
    for (const TopState& t : summary.top_counts) {
      if (emitted++ >= opt_.top_k) break;
      if (!first) out << ',';
      first = false;
      out << '[';
      append_json_string(out, t.state);
      out << ',' << t.count << ']';
    }
  }
  out << ']';

  // Counter deltas: only counters whose value changed since the last
  // snapshot (new counters count as changed-from-0).
  {
    bool open = false;
    for (const auto& [name, c] : reg.counters()) {
      const std::uint64_t prev = last_counters_[name];
      if (c.value() == prev) continue;
      out << (open ? "," : ",\"c\":{");
      open = true;
      append_json_string(out, name);
      // Counters are monotone in practice; emit a signed delta anyway so
      // set()-style counters (synced from external Stats) stay honest.
      out << ':'
          << (c.value() >= prev
                  ? static_cast<std::int64_t>(c.value() - prev)
                  : -static_cast<std::int64_t>(prev - c.value()));
      last_counters_[name] = c.value();
    }
    if (open) out << '}';
  }

  // Gauges: absolute values, changed only.
  {
    bool open = false;
    for (const auto& [name, g] : reg.gauges()) {
      const auto it = last_gauges_.find(name);
      if (it != last_gauges_.end() && it->second == g.value()) continue;
      out << (open ? "," : ",\"g\":{");
      open = true;
      append_json_string(out, name);
      out << ':';
      append_double(out, g.value());
      last_gauges_[name] = g.value();
    }
    if (open) out << '}';
  }

  // Histogram bucket deltas: name -> [[bucket_floor, added_count], ...].
  {
    bool open = false;
    for (const auto& [name, h] : reg.histograms()) {
      auto& prev = last_buckets_[name];
      bool any = false;
      std::ostringstream hb;
      for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
        const std::uint64_t d = h.bucket(b) - prev[b];
        if (d == 0) continue;
        if (any) hb << ',';
        any = true;
        hb << '[' << Histogram::bucket_floor(b) << ',' << d << ']';
        prev[b] = h.bucket(b);
      }
      if (!any) continue;
      out << (open ? "," : ",\"h\":{");
      open = true;
      append_json_string(out, name);
      out << ":[" << hb.str() << ']';
    }
    if (open) out << '}';
  }

  if (opt_.include_timings) {
    bool open = false;
    for (const auto& [name, t] : reg.timers()) {
      if (t.events() == 0) continue;
      out << (open ? "," : ",\"wall\":{");
      open = true;
      append_json_string(out, name);
      out << ":{\"events\":" << t.events() << ",\"sampled\":" << t.sampled()
          << ",\"est_s\":";
      append_double(out, t.estimated_seconds());
      out << '}';
    }
    if (open) out << '}';
  }

  out << '}';
  lines_.push_back(out.str());

  last_interactions_ = i;
  last_distinct_ = summary.distinct_states;
  next_ = (i / opt_.every + 1) * opt_.every;
}

std::string FlightRecorder::to_jsonl() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

void FlightRecorder::write(std::ostream& os) const {
  for (const std::string& line : lines_) os << line << '\n';
}

}  // namespace ppfs::obs

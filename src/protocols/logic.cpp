#include "protocols/logic.hpp"

namespace ppfs {

std::shared_ptr<const TableProtocol> make_or_protocol() {
  ProtocolBuilder b("or");
  const State zero = b.add_state("0", 0, /*initial=*/true);
  const State one = b.add_state("1", 1, /*initial=*/true);
  b.rule(zero, one, one, one);
  b.rule(one, zero, one, one);
  return b.build();
}

std::shared_ptr<const TableProtocol> make_and_protocol() {
  ProtocolBuilder b("and");
  const State zero = b.add_state("0", 0, /*initial=*/true);
  const State one = b.add_state("1", 1, /*initial=*/true);
  b.rule(zero, one, zero, zero);
  b.rule(one, zero, zero, zero);
  return b.build();
}

}  // namespace ppfs

#include "protocols/linear.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppfs {

std::shared_ptr<const TableProtocol> make_linear_threshold(
    const LinearThresholdSpec& spec) {
  if (spec.k < 1) throw std::invalid_argument("linear threshold: k >= 1");
  if (spec.coeffs.empty()) throw std::invalid_argument("linear threshold: coeffs");
  const std::uint32_t k = spec.k;
  ProtocolBuilder b("linear-threshold-k" + std::to_string(k));
  // Weight states 0..k (k = verdict), then the drained marker.
  for (std::uint32_t w = 0; w <= k; ++w) {
    const bool initial =
        std::any_of(spec.coeffs.begin(), spec.coeffs.end(),
                    [&](std::uint32_t c) { return std::min(c, k) == w; });
    b.add_state("w" + std::to_string(w), w == k ? 1 : 0, initial);
  }
  const State drained = b.add_state("z", 0);
  const auto K = static_cast<State>(k);

  for (State i = 0; i <= K; ++i) {
    for (State j = 0; j <= K; ++j) {
      if (i == K || j == K) {
        b.rule(i, j, K, K);  // verdict broadcast
      } else if (i + j >= K) {
        b.rule(i, j, K, K);
      } else if (j > 0) {
        b.rule(i, j, i + j, drained);  // starter pools the reactor's weight
      }
    }
    if (i == K) {
      b.rule(i, drained, K, K);
      b.rule(drained, i, K, K);
    }
  }
  return b.build();
}

State linear_threshold_input(const LinearThresholdSpec& spec, std::size_t symbol) {
  if (symbol >= spec.coeffs.size())
    throw std::out_of_range("linear_threshold_input: symbol");
  return std::min(spec.coeffs[symbol], spec.k);
}

}  // namespace ppfs

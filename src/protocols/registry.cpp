#include "protocols/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/population.hpp"
#include "protocols/counting.hpp"
#include "protocols/leader.hpp"
#include "protocols/logic.hpp"
#include "protocols/majority.hpp"
#include "protocols/oneway.hpp"
#include "protocols/pairing.hpp"
#include "protocols/parity.hpp"

namespace ppfs {

namespace {

Workload make_or_workload(std::size_t n) {
  auto p = make_or_protocol();
  // One agent holds a 1; OR must spread to everyone.
  std::vector<State> init(n, 0);
  init[0] = 1;
  return {"or(n=" + std::to_string(n) + ")", p, std::move(init), 1, nullptr};
}

Workload make_and_workload(std::size_t n) {
  auto p = make_and_protocol();
  // One agent holds a 0; AND must converge to 0.
  std::vector<State> init(n, 1);
  init[0] = 0;
  return {"and(n=" + std::to_string(n) + ")", p, std::move(init), 0, nullptr};
}

Workload make_approx_majority_workload(std::size_t n) {
  auto p = make_approximate_majority();
  const auto st = approx_majority_states();
  // 2/3 of the agents prefer x. The protocol guarantees the *majority*
  // opinion only w.h.p. for large margins, so the stable criterion — one
  // opinion extinct (consensus) — is what the workload checks.
  const std::size_t nx = std::max<std::size_t>(2 * n / 3, 1);
  auto init = make_initial({{st.x, nx}, {st.y, n - nx}});
  auto conv = [st](const std::vector<std::size_t>& counts) {
    return counts[st.x] == 0 || counts[st.y] == 0;
  };
  return {"approx-majority(n=" + std::to_string(n) + ")", p, std::move(init), -1,
          std::move(conv)};
}

Workload make_exact_majority_workload(std::size_t n) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  std::size_t nx = n / 2 + 1;  // strict majority for opinion 1
  auto init = make_initial({{st.big_x, nx}, {st.big_y, n - nx}});
  return {"exact-majority(n=" + std::to_string(n) + ")", p, std::move(init), 1,
          nullptr};
}

Workload make_exact_majority_gap_workload(std::size_t n) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  // Margin Theta(n): the simulator-at-scale instance of the same protocol.
  // The margin-2 workload above needs Theta(n^2) *simulated* interactions
  // to resolve the last cancellation, and no simulator can leap simulated
  // no-ops (the token/locking machinery runs regardless of whether delta
  // changes anything), so the count-space simulator demonstrations at
  // n = 10^6 use this large-margin initial configuration.
  const std::size_t nx = n / 2 + std::max<std::size_t>(1, n / 8);
  auto init = make_initial({{st.big_x, nx}, {st.big_y, n - nx}});
  return {"exact-majority-gap(n=" + std::to_string(n) + ")", p, std::move(init),
          1, nullptr};
}

Workload make_leader_workload(std::size_t n) {
  auto p = make_leader_election();
  const auto st = leader_states();
  auto init = make_initial({{st.leader, n}});
  auto conv = [st](const std::vector<std::size_t>& counts) {
    return counts[st.leader] == 1;
  };
  return {"leader(n=" + std::to_string(n) + ")", p, std::move(init), -1,
          std::move(conv)};
}

Workload make_threshold_workload(std::size_t n, std::size_t k, bool above) {
  auto p = make_threshold_counting(k);
  // `above`: k ones present (predicate true); else k-1 ones (false).
  const std::size_t ones = above ? k : k - 1;
  if (ones > n) throw std::invalid_argument("threshold workload: ones > n");
  auto init = make_initial({{1, ones}, {0, n - ones}});
  return {"threshold" + std::to_string(k) + (above ? "-true" : "-false") +
              "(n=" + std::to_string(n) + ")",
          p, std::move(init), above ? 1 : 0, nullptr};
}

Workload make_mod_workload(std::size_t n, std::size_t m) {
  const std::size_t ones = std::max<std::size_t>(1, n / 2);
  auto p = make_mod_counting(m, ones % m);
  auto init = make_initial({{1, ones}, {0, n - ones}});
  return {"mod" + std::to_string(m) + "(n=" + std::to_string(n) + ")", p,
          std::move(init), 1, nullptr};
}

Workload make_pairing_workload(std::size_t n) {
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  const std::size_t producers = n / 2;
  const std::size_t consumers = n - producers;
  auto init = make_initial({{st.consumer, consumers}, {st.producer, producers}});
  const std::size_t expect_cs = std::min(consumers, producers);
  auto conv = [st, expect_cs](const std::vector<std::size_t>& counts) {
    return counts[st.critical] == expect_cs;
  };
  return {"pairing(n=" + std::to_string(n) + ")", p, std::move(init), -1,
          std::move(conv)};
}

}  // namespace

std::vector<Workload> standard_workloads(std::size_t n) {
  if (n < 4) throw std::invalid_argument("standard_workloads: n >= 4 required");
  std::vector<Workload> out;
  out.push_back(make_or_workload(n));
  out.push_back(make_and_workload(n));
  out.push_back(make_approx_majority_workload(n));
  out.push_back(make_exact_majority_workload(n));
  out.push_back(make_exact_majority_gap_workload(n));
  out.push_back(make_leader_workload(n));
  out.push_back(make_threshold_workload(n, 3, true));
  out.push_back(make_threshold_workload(n, 3, false));
  out.push_back(make_mod_workload(n, 3));
  out.push_back(make_pairing_workload(n));
  return out;
}

std::vector<Workload> core_workloads(std::size_t n) {
  if (n < 4) throw std::invalid_argument("core_workloads: n >= 4 required");
  std::vector<Workload> out;
  out.push_back(make_or_workload(n));
  out.push_back(make_exact_majority_workload(n));
  out.push_back(make_leader_workload(n));
  out.push_back(make_pairing_workload(n));
  return out;
}

std::vector<OneWayWorkload> one_way_workloads(std::size_t n) {
  if (n < 4) throw std::invalid_argument("one_way_workloads: n >= 4 required");
  const std::string size = "(n=" + std::to_string(n) + ")";
  std::vector<OneWayWorkload> out;

  {
    std::vector<State> init(n, 0);
    init[0] = 1;
    out.push_back({"or" + size, make_io_or(), std::move(init), true, 1, nullptr});
  }
  {
    auto p = make_io_max(8);
    std::vector<State> init(n, 0);
    for (std::size_t i = 0; i < n; ++i) init[i] = static_cast<State>(i % 7);
    init[0] = 7;  // unique maximum to spread
    out.push_back({"max" + size, std::move(p), std::move(init), true, 7, nullptr});
  }
  {
    auto conv = [](const std::vector<std::size_t>& counts) {
      return counts[0] == 1;  // exactly one leader
    };
    out.push_back({"leader" + size, make_io_leader(), std::vector<State>(n, 0),
                   true, -1, std::move(conv)});
  }
  {
    // 2/3 majority for x; converged once one opinion is extinct. The
    // workload stands in for exact majority on one-way models (see
    // make_io_cancellation_majority).
    const auto st = io_majority_states();
    const std::size_t nx = std::max<std::size_t>(2 * n / 3, 1);
    auto init = make_initial({{st.x, nx}, {st.y, n - nx}});
    auto conv = [st](const std::vector<std::size_t>& counts) {
      return counts[st.x] == 0 || counts[st.y] == 0;
    };
    out.push_back({"exact-majority-1way" + size, make_io_cancellation_majority(),
                   std::move(init), true, -1, std::move(conv)});
  }
  {
    // IT-only: non-identity g (beacon phase), OR over the bit halves.
    std::vector<State> init(n, 0);
    init[0] = 2;  // bit set, phase 0
    auto conv = [](const std::vector<std::size_t>& counts) {
      return counts[0] == 0 && counts[1] == 0;  // every bit is 1
    };
    out.push_back({"beacon-or" + size, make_it_or_with_beacon(), std::move(init),
                   false, -1, std::move(conv)});
  }
  return out;
}

Workload find_workload(const std::string& name, std::size_t n) {
  for (Workload& w : standard_workloads(n)) {
    if (w.name.rfind(name, 0) == 0) return w;
  }
  throw std::invalid_argument("unknown workload '" + name + "'");
}

OneWayWorkload find_one_way_workload(const std::string& name, std::size_t n,
                                     Model model) {
  for (OneWayWorkload& w : one_way_workloads(n)) {
    // Prefix match; "exact-majority" resolves to "exact-majority-1way".
    if (w.name.rfind(name, 0) == 0) {
      if (model == Model::IO && !w.io)
        throw std::invalid_argument("workload '" + w.name +
                                    "' needs g != id, IO forbids it");
      return w;
    }
  }
  throw std::invalid_argument("unknown one-way workload '" + name +
                              "' (try: or, max, leader, exact-majority, "
                              "beacon-or)");
}

}  // namespace ppfs

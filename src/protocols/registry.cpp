#include "protocols/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/population.hpp"
#include "protocols/counting.hpp"
#include "protocols/leader.hpp"
#include "protocols/logic.hpp"
#include "protocols/majority.hpp"
#include "protocols/oneway.hpp"
#include "protocols/pairing.hpp"
#include "protocols/parity.hpp"

namespace ppfs {

namespace {

// Initial configuration from ordered (state, count) groups: a per-agent
// vector below kPerAgentLimit (groups concatenated in order — layouts
// stay byte-identical to the historical ones), a counts vector above it
// (the n = 10^9 path; only the count-space engines can run it).
template <class W>
void set_initial(W& w,
                 const std::vector<std::pair<State, std::size_t>>& groups) {
  std::size_t n = 0;
  std::size_t top = 0;
  for (const auto& [q, k] : groups) {
    n += k;
    top = std::max<std::size_t>(top, q);
  }
  if (n <= kPerAgentLimit) {
    w.initial = make_initial(groups);
    return;
  }
  w.initial_counts.assign(top + 1, 0);
  for (const auto& [q, k] : groups) w.initial_counts[q] += k;
}

Workload make_or_workload(std::size_t n) {
  // One agent holds a 1; OR must spread to everyone.
  Workload w{"or(n=" + std::to_string(n) + ")", make_or_protocol(), {}, 1,
             nullptr};
  set_initial(w, {{1, 1}, {0, n - 1}});
  return w;
}

Workload make_and_workload(std::size_t n) {
  // One agent holds a 0; AND must converge to 0.
  Workload w{"and(n=" + std::to_string(n) + ")", make_and_protocol(), {}, 0,
             nullptr};
  set_initial(w, {{0, 1}, {1, n - 1}});
  return w;
}

Workload make_approx_majority_workload(std::size_t n) {
  auto p = make_approximate_majority();
  const auto st = approx_majority_states();
  // 2/3 of the agents prefer x. The protocol guarantees the *majority*
  // opinion only w.h.p. for large margins, so the stable criterion — one
  // opinion extinct (consensus) — is what the workload checks.
  const std::size_t nx = std::max<std::size_t>(2 * n / 3, 1);
  auto conv = [st](const std::vector<std::size_t>& counts) {
    return counts[st.x] == 0 || counts[st.y] == 0;
  };
  Workload w{"approx-majority(n=" + std::to_string(n) + ")", p, {}, -1,
             std::move(conv)};
  set_initial(w, {{st.x, nx}, {st.y, n - nx}});
  return w;
}

Workload make_exact_majority_workload(std::size_t n) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  std::size_t nx = n / 2 + 1;  // strict majority for opinion 1
  Workload w{"exact-majority(n=" + std::to_string(n) + ")", p, {}, 1, nullptr};
  set_initial(w, {{st.big_x, nx}, {st.big_y, n - nx}});
  return w;
}

Workload make_exact_majority_gap_workload(std::size_t n) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  // Margin Theta(n): the simulator-at-scale instance of the same protocol.
  // The margin-2 workload above needs Theta(n^2) *simulated* interactions
  // to resolve the last cancellation, and no simulator can leap simulated
  // no-ops (the token/locking machinery runs regardless of whether delta
  // changes anything), so the count-space simulator demonstrations at
  // n = 10^6 use this large-margin initial configuration.
  const std::size_t nx = n / 2 + std::max<std::size_t>(1, n / 8);
  Workload w{"exact-majority-gap(n=" + std::to_string(n) + ")", p, {}, 1,
             nullptr};
  set_initial(w, {{st.big_x, nx}, {st.big_y, n - nx}});
  return w;
}

Workload make_leader_workload(std::size_t n) {
  auto p = make_leader_election();
  const auto st = leader_states();
  auto conv = [st](const std::vector<std::size_t>& counts) {
    return counts[st.leader] == 1;
  };
  Workload w{"leader(n=" + std::to_string(n) + ")", p, {}, -1, std::move(conv)};
  set_initial(w, {{st.leader, n}});
  return w;
}

Workload make_threshold_workload(std::size_t n, std::size_t k, bool above) {
  auto p = make_threshold_counting(k);
  // `above`: k ones present (predicate true); else k-1 ones (false).
  const std::size_t ones = above ? k : k - 1;
  if (ones > n) throw std::invalid_argument("threshold workload: ones > n");
  Workload w{"threshold" + std::to_string(k) + (above ? "-true" : "-false") +
                 "(n=" + std::to_string(n) + ")",
             p, {}, above ? 1 : 0, nullptr};
  set_initial(w, {{1, ones}, {0, n - ones}});
  return w;
}

Workload make_mod_workload(std::size_t n, std::size_t m) {
  const std::size_t ones = std::max<std::size_t>(1, n / 2);
  auto p = make_mod_counting(m, ones % m);
  Workload w{"mod" + std::to_string(m) + "(n=" + std::to_string(n) + ")", p, {},
             1, nullptr};
  set_initial(w, {{1, ones}, {0, n - ones}});
  return w;
}

Workload make_pairing_workload(std::size_t n) {
  auto p = make_pairing_protocol();
  const auto st = pairing_states();
  const std::size_t producers = n / 2;
  const std::size_t consumers = n - producers;
  const std::size_t expect_cs = std::min(consumers, producers);
  auto conv = [st, expect_cs](const std::vector<std::size_t>& counts) {
    return counts[st.critical] == expect_cs;
  };
  Workload w{"pairing(n=" + std::to_string(n) + ")", p, {}, -1,
             std::move(conv)};
  set_initial(w, {{st.consumer, consumers}, {st.producer, producers}});
  return w;
}

}  // namespace

std::vector<Workload> standard_workloads(std::size_t n) {
  if (n < 4) throw std::invalid_argument("standard_workloads: n >= 4 required");
  std::vector<Workload> out;
  out.push_back(make_or_workload(n));
  out.push_back(make_and_workload(n));
  out.push_back(make_approx_majority_workload(n));
  out.push_back(make_exact_majority_workload(n));
  out.push_back(make_exact_majority_gap_workload(n));
  out.push_back(make_leader_workload(n));
  out.push_back(make_threshold_workload(n, 3, true));
  out.push_back(make_threshold_workload(n, 3, false));
  out.push_back(make_mod_workload(n, 3));
  out.push_back(make_pairing_workload(n));
  return out;
}

std::vector<Workload> core_workloads(std::size_t n) {
  if (n < 4) throw std::invalid_argument("core_workloads: n >= 4 required");
  std::vector<Workload> out;
  out.push_back(make_or_workload(n));
  out.push_back(make_exact_majority_workload(n));
  out.push_back(make_leader_workload(n));
  out.push_back(make_pairing_workload(n));
  return out;
}

std::vector<OneWayWorkload> one_way_workloads(std::size_t n) {
  if (n < 4) throw std::invalid_argument("one_way_workloads: n >= 4 required");
  const std::string size = "(n=" + std::to_string(n) + ")";
  std::vector<OneWayWorkload> out;

  {
    OneWayWorkload w{"or" + size, make_io_or(), {}, true, 1, nullptr};
    set_initial(w, {{1, 1}, {0, n - 1}});
    out.push_back(std::move(w));
  }
  {
    OneWayWorkload w{"max" + size, make_io_max(8), {}, true, 7, nullptr};
    if (n <= kPerAgentLimit) {
      std::vector<State> init(n, 0);
      for (std::size_t i = 0; i < n; ++i) init[i] = static_cast<State>(i % 7);
      init[0] = 7;  // unique maximum to spread
      w.initial = std::move(init);
    } else {
      // Counts form of the same i % 7 spread with agent 0 lifted to 7.
      w.initial_counts.assign(8, 0);
      for (std::size_t q = 0; q < 7; ++q)
        w.initial_counts[q] = n / 7 + (q < n % 7 ? 1 : 0);
      --w.initial_counts[0];
      w.initial_counts[7] = 1;
    }
    out.push_back(std::move(w));
  }
  {
    auto conv = [](const std::vector<std::size_t>& counts) {
      return counts[0] == 1;  // exactly one leader
    };
    OneWayWorkload w{"leader" + size, make_io_leader(), {}, true, -1,
                     std::move(conv)};
    set_initial(w, {{0, n}});
    out.push_back(std::move(w));
  }
  {
    // 2/3 majority for x; converged once one opinion is extinct. The
    // workload stands in for exact majority on one-way models (see
    // make_io_cancellation_majority).
    const auto st = io_majority_states();
    const std::size_t nx = std::max<std::size_t>(2 * n / 3, 1);
    auto conv = [st](const std::vector<std::size_t>& counts) {
      return counts[st.x] == 0 || counts[st.y] == 0;
    };
    OneWayWorkload w{"exact-majority-1way" + size,
                     make_io_cancellation_majority(), {}, true, -1,
                     std::move(conv)};
    set_initial(w, {{st.x, nx}, {st.y, n - nx}});
    out.push_back(std::move(w));
  }
  {
    // IT-only: non-identity g (beacon phase), OR over the bit halves.
    auto conv = [](const std::vector<std::size_t>& counts) {
      return counts[0] == 0 && counts[1] == 0;  // every bit is 1
    };
    OneWayWorkload w{"beacon-or" + size, make_it_or_with_beacon(), {}, false,
                     -1, std::move(conv)};
    set_initial(w, {{2, 1}, {0, n - 1}});
    out.push_back(std::move(w));
  }
  return out;
}

Workload find_workload(const std::string& name, std::size_t n) {
  for (Workload& w : standard_workloads(n)) {
    if (w.name.rfind(name, 0) == 0) return w;
  }
  throw std::invalid_argument("unknown workload '" + name + "'");
}

OneWayWorkload find_one_way_workload(const std::string& name, std::size_t n,
                                     Model model) {
  for (OneWayWorkload& w : one_way_workloads(n)) {
    // Prefix match; "exact-majority" resolves to "exact-majority-1way".
    if (w.name.rfind(name, 0) == 0) {
      if (model == Model::IO && !w.io)
        throw std::invalid_argument("workload '" + w.name +
                                    "' needs g != id, IO forbids it");
      return w;
    }
  }
  throw std::invalid_argument("unknown one-way workload '" + name +
                              "' (try: or, max, leader, exact-majority, "
                              "beacon-or)");
}

}  // namespace ppfs

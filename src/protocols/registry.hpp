// A small registry of ready-made simulated workloads: protocol + initial
// configuration + expected stable outcome. Tests and benches sweep over
// these instead of copy-pasting setups.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ppfs {

// Largest population the registry will enumerate agent-by-agent. Above
// it (n = 10^9 runs) a per-agent State vector costs gigabytes before any
// engine starts, so workloads carry `initial_counts` instead and run on
// the count-space engines via make_engine_from_counts. Below it the
// per-agent layouts are byte-identical to the historical ones.
inline constexpr std::size_t kPerAgentLimit = std::size_t{1} << 27;

struct Workload {
  std::string name;
  std::shared_ptr<const Protocol> protocol;
  std::vector<State> initial;
  // Expected stable consensus output (see Population::consensus_output),
  // or -1 if the workload's verdict is checked by a custom monitor.
  int expected_output = -1;
  // Convergence probe: true once the configuration (by state counts) has
  // reached the expected stable set. Null means "use consensus_output".
  std::function<bool(const std::vector<std::size_t>& counts)> converged;
  // Count-vector form of the initial configuration, populated INSTEAD of
  // `initial` when n > kPerAgentLimit: initial_counts[q] agents start in
  // state q. Exactly one of the two is non-empty.
  std::vector<std::size_t> initial_counts = {};
};

// Standard workload suite, parameterized by population size (n >= 2).
// Includes: or / and epidemics, approximate majority, exact majority
// (margin-2, plus the margin-Theta(n) "exact-majority-gap" instance the
// simulator-at-scale runs use), leader election, threshold-k counting,
// mod-m counting, pairing.
[[nodiscard]] std::vector<Workload> standard_workloads(std::size_t n);

// A smaller suite for expensive sweeps (simulators under adversaries).
[[nodiscard]] std::vector<Workload> core_workloads(std::size_t n);

// A workload expressed directly in the one-way form (g, f) of §2.2, for
// the IT/IO/I1..I4 engines. `io` marks protocols with g = id (runnable
// under IO and every I-model; IT-only workloads have io = false).
struct OneWayWorkload {
  std::string name;
  std::shared_ptr<const OneWayProtocol> protocol;
  std::vector<State> initial;
  bool io = true;
  // Expected stable consensus output, or -1 with a custom probe.
  int expected_output = -1;
  std::function<bool(const std::vector<std::size_t>& counts)> converged;
  // As in Workload: the counts form, for n > kPerAgentLimit.
  std::vector<std::size_t> initial_counts = {};
};

// One-way workload suite: or / max epidemics, leader election, the IT
// beacon-or, and the cancellation majority ("exact-majority" requests on
// one-way models resolve here — exact majority is not one-way-computable,
// so the w.h.p.-exact cancellation protocol stands in for it).
[[nodiscard]] std::vector<OneWayWorkload> one_way_workloads(std::size_t n);

// Name resolution shared by the CLI and the experiment layer: the first
// standard workload whose name starts with `name` (names carry an "(n=...)"
// suffix, so "exact-majority" matches before "exact-majority-gap"). Throws
// std::invalid_argument for unknown names.
[[nodiscard]] Workload find_workload(const std::string& name, std::size_t n);

// One-way counterpart ("exact-majority" resolves to the cancellation
// majority). Throws if the workload needs g != id under IO.
[[nodiscard]] OneWayWorkload find_one_way_workload(const std::string& name,
                                                   std::size_t n, Model model);

}  // namespace ppfs

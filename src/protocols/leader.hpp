// Leader election: every agent starts as a leader L; when two leaders
// interact, the reactor is demoted to follower F. Under global fairness
// exactly one leader survives. Outputs: L -> 1, F -> 0.
#pragma once

#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

struct LeaderStates {
  State leader;
  State follower;
};

[[nodiscard]] LeaderStates leader_states();
[[nodiscard]] std::shared_ptr<const TableProtocol> make_leader_election();

}  // namespace ppfs

#include "protocols/leader.hpp"

namespace ppfs {

LeaderStates leader_states() { return {0, 1}; }

std::shared_ptr<const TableProtocol> make_leader_election() {
  ProtocolBuilder b("leader-election");
  const State L = b.add_state("L", 1, /*initial=*/true);
  const State F = b.add_state("F", 0);
  b.rule(L, L, L, F);
  return b.build();
}

}  // namespace ppfs

#include "protocols/counting.hpp"

#include <stdexcept>

namespace ppfs {

std::shared_ptr<const TableProtocol> make_threshold_counting(std::size_t k) {
  if (k < 1) throw std::invalid_argument("make_threshold_counting: k >= 1 required");
  ProtocolBuilder b("threshold-" + std::to_string(k));
  for (std::size_t w = 0; w <= k; ++w) {
    const bool initial = (w <= 1);  // inputs are weights 0 and 1
    b.add_state("w" + std::to_string(w), w == k ? 1 : 0, initial);
  }
  const auto K = static_cast<State>(k);
  for (State i = 0; i <= K; ++i) {
    for (State j = 0; j <= K; ++j) {
      if (i == K || j == K) {
        // Verdict broadcast: meeting a sated agent sates both.
        b.rule(i, j, K, K);
      } else if (i + j >= K) {
        b.rule(i, j, K, K);
      } else if (j > 0) {
        // Starter absorbs the reactor's weight.
        b.rule(i, j, i + j, 0);
      }
      // i < K, j == 0: nothing to pool; identity (builder default).
    }
  }
  return b.build();
}

}  // namespace ppfs

// General linear-threshold predicates: decide  sum_i  c_i * x_i  >= k,
// where agent inputs x_i are drawn from a small input alphabet with
// per-symbol coefficients. The classic semilinear workhorse (Angluin et
// al.): agents pool truncated weighted sums pairwise; crossing the
// threshold broadcasts an absorbing "true" verdict.
//
// Beyond being a workload in its own right, this family parameterizes the
// simulated protocol's state-space size |Q_P| (= k + 2), which the
// Corollary 1 memory experiments sweep.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/protocol.hpp"

namespace ppfs {

struct LinearThresholdSpec {
  // coefficient per input symbol; agent with input j contributes coeffs[j].
  std::vector<std::uint32_t> coeffs;
  std::uint32_t k = 1;  // threshold (>= 1)
};

// States: weights 0..k-1 (outputs 0), the absorbing verdict state k
// (output 1), plus a dedicated "drained" zero-weight state (output 0) so
// that weight-0 agents created by pooling are distinguishable from
// initial-input zeros in traces. |Q_P| = k + 2.
[[nodiscard]] std::shared_ptr<const TableProtocol> make_linear_threshold(
    const LinearThresholdSpec& spec);

// Initial state for input symbol j under the spec (the truncated weight).
[[nodiscard]] State linear_threshold_input(const LinearThresholdSpec& spec,
                                           std::size_t symbol);

}  // namespace ppfs

#include "protocols/pairing.hpp"

namespace ppfs {

PairingStates pairing_states() { return {0, 1, 2, 3}; }

std::shared_ptr<const TableProtocol> make_pairing_protocol() {
  ProtocolBuilder b("pairing");
  const State c = b.add_state("c", 0, /*initial=*/true);
  const State p = b.add_state("p", 0, /*initial=*/true);
  const State cs = b.add_state("cs", 1);
  const State bot = b.add_state("bot", 0);
  (void)bot;
  // (c, p) -> (cs, ⊥) and the mirrored (p, c) -> (⊥, cs).
  b.symmetric_rule(c, p, cs, bot);
  return b.build();
}

}  // namespace ppfs

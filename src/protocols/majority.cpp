#include "protocols/majority.hpp"

namespace ppfs {

ApproxMajorityStates approx_majority_states() { return {0, 1, 2}; }

std::shared_ptr<const TableProtocol> make_approximate_majority() {
  ProtocolBuilder bld("approx-majority");
  const State x = bld.add_state("x", 1, /*initial=*/true);
  const State y = bld.add_state("y", 0, /*initial=*/true);
  const State b = bld.add_state("b", -1);
  bld.rule(x, y, x, b);
  bld.rule(y, x, y, b);
  bld.rule(x, b, x, x);
  bld.rule(y, b, y, y);
  // Mirrors so that blanks are recruited regardless of role.
  bld.rule(b, x, x, x);
  bld.rule(b, y, y, y);
  return bld.build();
}

ExactMajorityStates exact_majority_states() { return {0, 1, 2, 3}; }

std::shared_ptr<const TableProtocol> make_exact_majority() {
  ProtocolBuilder bld("exact-majority");
  const State X = bld.add_state("X", 1, /*initial=*/true);
  const State Y = bld.add_state("Y", 0, /*initial=*/true);
  const State x = bld.add_state("x", 1);
  const State y = bld.add_state("y", 0);
  // Cancellation of strong opposites.
  bld.symmetric_rule(X, Y, x, y);
  // Strong states flip opposing weak states.
  bld.symmetric_rule(X, y, X, x);
  bld.symmetric_rule(Y, x, Y, y);
  return bld.build();
}

}  // namespace ppfs

// Boolean epidemics: OR and AND over the agents' input bits. These are the
// simplest stably-computable predicates and double as smoke tests for
// every engine and simulator in the library.
#pragma once

#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

// States 0 and 1, both initial; delta(s,r) = (s|r, s|r). Output identity.
[[nodiscard]] std::shared_ptr<const TableProtocol> make_or_protocol();

// delta(s,r) = (s&r, s&r).
[[nodiscard]] std::shared_ptr<const TableProtocol> make_and_protocol();

}  // namespace ppfs

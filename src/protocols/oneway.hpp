// Native one-way protocols (§2.2, after Angluin, Aspnes & Eisenstat's
// one-way communication paper, cited as [4]). These run directly in the
// IT/IO engines and are used by the Figure 1 experiments to demonstrate
// what the weak models compute natively, without any simulator.
#pragma once

#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

// IO epidemic OR: f(s, r) = s | r, g = id.
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_io_or();

// IO max-epidemic over values 0..m-1: f(s, r) = max(s, r).
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_io_max(std::size_t m);

// IO leader election: a leader observing a leader becomes a follower
// (f(L, L) = F); g = id. Stabilizes to exactly one leader under GF.
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_io_leader();

// IT "detecting" protocol exercising a non-identity g: every time the
// starter transmits it advances a two-phase flag; the reactor computes OR.
// Demonstrates starter-side proximity awareness, impossible in IO.
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_it_or_with_beacon();

// IO cancellation majority: states x, y, b; a reactor holding the opposing
// opinion of the observed starter blanks itself, a blank reactor adopts the
// observed opinion (the one-way restriction of Angluin-Aspnes-Eisenstat
// approximate majority — only the reactor-side halves of its rules).
// Converges to a consensus on one opinion a.s. under the uniform
// scheduler, and to the initial majority w.h.p. for large margins. Exact
// majority is not one-way-computable (one-way models compute only
// counting predicates), so this is the canonical majority workload of the
// IT/IO/I* family.
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_io_cancellation_majority();

struct IoMajorityStates {
  State x;  // opinion 1
  State y;  // opinion 0
  State b;  // blank
};
[[nodiscard]] IoMajorityStates io_majority_states();

// Lower a native one-way protocol to its equivalent two-way table
// (delta(s,r) = (g(s), f(s,r))), e.g. to reuse two-way tooling.
[[nodiscard]] std::shared_ptr<const TableProtocol> lower_to_two_way(
    const OneWayProtocol& p, std::vector<State> initial);

}  // namespace ppfs

// Native one-way protocols (§2.2, after Angluin, Aspnes & Eisenstat's
// one-way communication paper, cited as [4]). These run directly in the
// IT/IO engines and are used by the Figure 1 experiments to demonstrate
// what the weak models compute natively, without any simulator.
#pragma once

#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

// IO epidemic OR: f(s, r) = s | r, g = id.
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_io_or();

// IO max-epidemic over values 0..m-1: f(s, r) = max(s, r).
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_io_max(std::size_t m);

// IO leader election: a leader observing a leader becomes a follower
// (f(L, L) = F); g = id. Stabilizes to exactly one leader under GF.
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_io_leader();

// IT "detecting" protocol exercising a non-identity g: every time the
// starter transmits it advances a two-phase flag; the reactor computes OR.
// Demonstrates starter-side proximity awareness, impossible in IO.
[[nodiscard]] std::shared_ptr<const OneWayProtocol> make_it_or_with_beacon();

// Lower a native one-way protocol to its equivalent two-way table
// (delta(s,r) = (g(s), f(s,r))), e.g. to reuse two-way tooling.
[[nodiscard]] std::shared_ptr<const TableProtocol> lower_to_two_way(
    const OneWayProtocol& p, std::vector<State> initial);

}  // namespace ppfs

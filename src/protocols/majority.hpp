// Majority protocols used as simulated substrates.
//
// * make_approximate_majority(): the 3-state protocol of Angluin, Aspnes &
//   Eisenstat ("A simple population protocol for fast robust approximate
//   majority", cited as [6] in the paper): states x, y, b with rules
//   (x,y)->(x,b), (y,x)->(y,b), (x,b)->(x,x), (y,b)->(y,y). Under global
//   fairness it converges to a configuration where one opinion is extinct.
//
// * make_exact_majority(): the standard 4-state exact-majority protocol
//   (strong states X, Y; weak states x, y): opposing strong states cancel
//   to weak, strong states convert opposing weak ones. For unequal initial
//   support it stabilizes to the majority opinion under global fairness.
#pragma once

#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

struct ApproxMajorityStates {
  State x;  // opinion 1
  State y;  // opinion 0
  State b;  // blank
};

[[nodiscard]] ApproxMajorityStates approx_majority_states();
[[nodiscard]] std::shared_ptr<const TableProtocol> make_approximate_majority();

struct ExactMajorityStates {
  State big_x;  // strong opinion 1
  State big_y;  // strong opinion 0
  State x;      // weak opinion 1
  State y;      // weak opinion 0
};

[[nodiscard]] ExactMajorityStates exact_majority_states();
[[nodiscard]] std::shared_ptr<const TableProtocol> make_exact_majority();

}  // namespace ppfs

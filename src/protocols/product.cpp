#include "protocols/product.hpp"

#include <stdexcept>

namespace ppfs {

State product_state(const Protocol& a, const Protocol& b, State qa, State qb) {
  if (qa >= a.num_states() || qb >= b.num_states())
    throw std::out_of_range("product_state");
  return static_cast<State>(qa * b.num_states() + qb);
}

std::shared_ptr<const TableProtocol> make_product_protocol(
    std::shared_ptr<const Protocol> a, std::shared_ptr<const Protocol> b,
    std::function<int(int, int)> combine, const std::string& name) {
  if (!a || !b) throw std::invalid_argument("make_product_protocol: null protocol");
  if (!combine) throw std::invalid_argument("make_product_protocol: null combiner");
  const std::size_t na = a->num_states();
  const std::size_t nb = b->num_states();
  const std::size_t n = na * nb;

  std::vector<std::string> names(n);
  std::vector<int> outputs(n);
  for (State qa = 0; qa < na; ++qa) {
    for (State qb = 0; qb < nb; ++qb) {
      const State q = static_cast<State>(qa * nb + qb);
      names[q] = "(" + a->state_name(qa) + "," + b->state_name(qb) + ")";
      outputs[q] = combine(a->output(qa), b->output(qb));
    }
  }

  std::vector<State> initial;
  for (State qa : a->initial_states())
    for (State qb : b->initial_states())
      initial.push_back(static_cast<State>(qa * nb + qb));

  std::vector<StatePair> table(n * n);
  for (State sa = 0; sa < na; ++sa) {
    for (State sb = 0; sb < nb; ++sb) {
      for (State ra = 0; ra < na; ++ra) {
        for (State rb = 0; rb < nb; ++rb) {
          const StatePair ta = a->delta(sa, ra);
          const StatePair tb = b->delta(sb, rb);
          const State s = static_cast<State>(sa * nb + sb);
          const State r = static_cast<State>(ra * nb + rb);
          table[static_cast<std::size_t>(s) * n + r] =
              StatePair{static_cast<State>(ta.starter * nb + tb.starter),
                        static_cast<State>(ta.reactor * nb + tb.reactor)};
        }
      }
    }
  }
  const std::string pname =
      name.empty() ? a->name() + "*" + b->name() : name;
  return std::make_shared<TableProtocol>(pname, std::move(names), std::move(outputs),
                                         std::move(initial), std::move(table));
}

std::function<int(int, int)> combine_or() {
  return [](int x, int y) {
    if (x == 1 || y == 1) return 1;
    if (x == 0 && y == 0) return 0;
    return -1;
  };
}

std::function<int(int, int)> combine_and() {
  return [](int x, int y) {
    if (x == 0 || y == 0) return 0;
    if (x == 1 && y == 1) return 1;
    return -1;
  };
}

}  // namespace ppfs

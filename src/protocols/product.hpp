// Product combinator: run two protocols in lockstep on paired states and
// combine their outputs with a boolean function. Since the stably
// computable predicates are exactly the semilinear ones — boolean
// combinations of threshold and modulo predicates (Angluin, Aspnes,
// Eisenstat, cited as [5] in the paper) — this combinator closes the
// protocol library under the operations that generate the whole class.
#pragma once

#include <functional>
#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

// State space is the cartesian product (id = qa * |Q_B| + qb); delta acts
// componentwise; initial states are pairs of initial states; outputs are
// combine(output_a, output_b), where combine sees -1 for "undecided" and
// should return -1 until both verdicts are usable.
[[nodiscard]] std::shared_ptr<const TableProtocol> make_product_protocol(
    std::shared_ptr<const Protocol> a, std::shared_ptr<const Protocol> b,
    std::function<int(int, int)> combine, const std::string& name = "");

// Pair the component states into a product state id.
[[nodiscard]] State product_state(const Protocol& a, const Protocol& b, State qa,
                                  State qb);

// Ready-made combiners for the semilinear closure.
[[nodiscard]] std::function<int(int, int)> combine_or();
[[nodiscard]] std::function<int(int, int)> combine_and();

}  // namespace ppfs

// Modulo-m sum predicate: decides whether the sum of the agents' inputs is
// congruent to r (mod m). One "active" token per surviving aggregator
// carries the running sum; passive agents copy the verdict bit
// epidemically. A canonical member of the semilinear predicate family.
//
// States: active(v) for v in [0, m), then passive(0), passive(1).
// Outputs: active(v) -> [v == r], passive(b) -> b.
#pragma once

#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

// m >= 2, 0 <= r < m. Initial states are active(0) and active(1) (inputs).
[[nodiscard]] std::shared_ptr<const TableProtocol> make_mod_counting(std::size_t m,
                                                                     std::size_t r);

}  // namespace ppfs

#include "protocols/parity.hpp"

#include <stdexcept>

namespace ppfs {

std::shared_ptr<const TableProtocol> make_mod_counting(std::size_t m, std::size_t r) {
  if (m < 2) throw std::invalid_argument("make_mod_counting: m >= 2 required");
  if (r >= m) throw std::invalid_argument("make_mod_counting: r < m required");
  ProtocolBuilder b("mod" + std::to_string(m) + "-eq-" + std::to_string(r));
  std::vector<State> act(m);
  for (std::size_t v = 0; v < m; ++v) {
    act[v] = b.add_state("a" + std::to_string(v), v == r ? 1 : 0,
                         /*initial=*/v <= 1);
  }
  const State p0 = b.add_state("p0", 0);
  const State p1 = b.add_state("p1", 1);
  auto passive_for = [&](std::size_t v) { return v == r ? p1 : p0; };

  for (std::size_t u = 0; u < m; ++u) {
    for (std::size_t v = 0; v < m; ++v) {
      const std::size_t sum = (u + v) % m;
      // Two actives merge: starter keeps the sum, reactor goes passive
      // with the verdict for the merged sum.
      b.rule(act[u], act[v], act[sum], passive_for(sum));
    }
    // Active meets passive: refresh the passive agent's verdict bit.
    b.rule(act[u], p0, act[u], passive_for(u));
    b.rule(act[u], p1, act[u], passive_for(u));
    // Passive meets active: same, using the two-way power to update the
    // starter-side passive agent.
    b.rule(p0, act[u], passive_for(u), act[u]);
    b.rule(p1, act[u], passive_for(u), act[u]);
  }
  return b.build();
}

}  // namespace ppfs

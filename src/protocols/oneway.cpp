#include "protocols/oneway.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppfs {

namespace {

class IoOr final : public OneWayProtocol {
 public:
  std::size_t num_states() const override { return 2; }
  State g(State s) const override { return s; }
  State f(State s, State r) const override { return s | r; }
  std::string name() const override { return "io-or"; }
  int output(State q) const override { return static_cast<int>(q); }
};

class IoMax final : public OneWayProtocol {
 public:
  explicit IoMax(std::size_t m) : m_(m) {
    if (m < 2) throw std::invalid_argument("io-max: m >= 2");
  }
  std::size_t num_states() const override { return m_; }
  State g(State s) const override { return s; }
  State f(State s, State r) const override { return std::max(s, r); }
  std::string name() const override { return "io-max"; }
  int output(State q) const override { return static_cast<int>(q); }

 private:
  std::size_t m_;
};

class IoLeader final : public OneWayProtocol {
 public:
  // 0 = leader, 1 = follower.
  std::size_t num_states() const override { return 2; }
  State g(State s) const override { return s; }
  State f(State s, State r) const override { return (s == 0 && r == 0) ? 1 : r; }
  std::string name() const override { return "io-leader"; }
  int output(State q) const override { return q == 0 ? 1 : 0; }
};

class ItOrBeacon final : public OneWayProtocol {
 public:
  // State encodes (bit, phase): id = bit*2 + phase. g flips the phase —
  // a starter-side effect only IT permits; f computes OR of the bits.
  std::size_t num_states() const override { return 4; }
  State g(State s) const override { return (s & 2u) | ((s & 1u) ^ 1u); }
  State f(State s, State r) const override {
    const State bit = ((s >> 1) | (r >> 1)) & 1u;
    return (bit << 1) | (r & 1u);
  }
  std::string name() const override { return "it-or-beacon"; }
  int output(State q) const override { return static_cast<int>(q >> 1); }
};

class IoCancellationMajority final : public OneWayProtocol {
 public:
  // 0 = x (opinion 1), 1 = y (opinion 0), 2 = b (blank).
  std::size_t num_states() const override { return 3; }
  State g(State s) const override { return s; }
  State f(State s, State r) const override {
    if ((s == 0 && r == 1) || (s == 1 && r == 0)) return 2;  // cancel
    if (r == 2 && (s == 0 || s == 1)) return s;              // recruit
    return r;
  }
  std::string name() const override { return "io-majority"; }
  int output(State q) const override { return q == 2 ? -1 : (q == 0 ? 1 : 0); }
};

}  // namespace

std::shared_ptr<const OneWayProtocol> make_io_or() { return std::make_shared<IoOr>(); }

std::shared_ptr<const OneWayProtocol> make_io_max(std::size_t m) {
  return std::make_shared<IoMax>(m);
}

std::shared_ptr<const OneWayProtocol> make_io_leader() {
  return std::make_shared<IoLeader>();
}

std::shared_ptr<const OneWayProtocol> make_it_or_with_beacon() {
  return std::make_shared<ItOrBeacon>();
}

std::shared_ptr<const OneWayProtocol> make_io_cancellation_majority() {
  return std::make_shared<IoCancellationMajority>();
}

IoMajorityStates io_majority_states() { return {0, 1, 2}; }

std::shared_ptr<const TableProtocol> lower_to_two_way(const OneWayProtocol& p,
                                                      std::vector<State> initial) {
  const std::size_t n = p.num_states();
  std::vector<std::string> names(n);
  std::vector<int> outputs(n);
  for (State q = 0; q < n; ++q) {
    names[q] = "q" + std::to_string(q);
    outputs[q] = p.output(q);
  }
  std::vector<StatePair> table(n * n);
  for (State s = 0; s < n; ++s)
    for (State r = 0; r < n; ++r) table[s * n + r] = StatePair{p.g(s), p.f(s, r)};
  return std::make_shared<TableProtocol>(p.name() + "-as-two-way", std::move(names),
                                         std::move(outputs), std::move(initial),
                                         std::move(table));
}

}  // namespace ppfs

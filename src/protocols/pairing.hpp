// The Pairing Problem protocol PIP (Definition 5 / §3 of the paper).
//
// Agents start as consumers (c) or producers (p). The only non-trivial
// rules are (c, p) -> (cs, ⊥) and (p, c) -> (⊥, cs): a consumer meeting a
// producer enters the irrevocable critical state cs, consuming the
// producer. PIP solves Pair in the two-way model; it is the
// counterexample protocol of every impossibility proof in the paper, since
// the safety property (#cs ≤ #producers at all times) is exactly what
// omissions let an adversary break.
#pragma once

#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

struct PairingStates {
  State consumer;  // c
  State producer;  // p
  State critical;  // cs (irrevocable)
  State bottom;    // ⊥ (spent producer)
};

[[nodiscard]] PairingStates pairing_states();

// The PIP table protocol. Outputs: cs -> 1, everything else -> 0.
[[nodiscard]] std::shared_ptr<const TableProtocol> make_pairing_protocol();

}  // namespace ppfs

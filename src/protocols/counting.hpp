// Flock-of-birds / threshold counting: decides whether the number of
// agents with input 1 is at least k (a canonical semilinear predicate,
// after Angluin et al.). States are weights 0..k; interacting agents pool
// their weights into the starter; once any agent reaches weight k the
// "detected" verdict spreads epidemically (k is absorbing for both
// parties). Outputs: weight k -> 1, everything else -> 0.
#pragma once

#include <memory>

#include "core/protocol.hpp"

namespace ppfs {

// k >= 1; the protocol has k+1 states (weights 0..k).
[[nodiscard]] std::shared_ptr<const TableProtocol> make_threshold_counting(
    std::size_t k);

}  // namespace ppfs

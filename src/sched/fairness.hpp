// Global-fairness auditing. True GF (§2.1) quantifies over closed sets of
// configurations and cannot be checked on a finite prefix; what CAN be
// measured is the standard probability-1 witness for the uniform random
// scheduler: every ordered agent pair keeps occurring, with bounded gaps.
// The auditor tracks per-ordered-pair occurrence counts and gap statistics
// of the *non-omissive* interactions (the adversary may not starve real
// interactions, Def. 1/2), giving experiments a fairness health metric.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace ppfs {

class FairnessAuditor {
 public:
  explicit FairnessAuditor(std::size_t n);

  void observe(const Interaction& ia);

  [[nodiscard]] std::size_t steps() const noexcept { return step_; }

  // Number of ordered pairs that occurred at least once.
  [[nodiscard]] std::size_t pairs_covered() const;
  [[nodiscard]] bool all_pairs_covered() const;

  // Largest current starvation: steps since the least recently seen
  // ordered pair last occurred (or since the start).
  [[nodiscard]] std::size_t max_current_gap() const;

  // Largest gap ever observed between consecutive occurrences of the same
  // ordered pair.
  [[nodiscard]] std::size_t max_historic_gap() const noexcept { return max_gap_; }

  [[nodiscard]] std::size_t count(AgentId s, AgentId r) const;

 private:
  [[nodiscard]] std::size_t idx(AgentId s, AgentId r) const {
    return static_cast<std::size_t>(s) * n_ + r;
  }
  std::size_t n_;
  std::size_t step_ = 0;
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> last_seen_;  // step index + 1; 0 = never
  std::size_t max_gap_ = 0;
};

}  // namespace ppfs

#include "sched/omission_process.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "engine/batch/leap_sampling.hpp"

namespace ppfs {

std::string adversary_kind_name(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::UO: return "uo";
    case AdversaryKind::NO: return "no";
    case AdversaryKind::NO1: return "no1";
    case AdversaryKind::Budget: return "budget";
  }
  throw std::invalid_argument("adversary_kind_name: bad kind");
}

AdversaryParams parse_adversary_spec(const std::string& spec) {
  AdversaryParams p;
  if (spec == "none" || spec.empty()) {
    p.rate = 0.0;
    return p;
  }
  // Split on ':' into head and up to two numeric fields.
  std::vector<std::string> parts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t next = spec.find(':', pos);
    if (next == std::string::npos) {
      parts.push_back(spec.substr(pos));
      break;
    }
    parts.push_back(spec.substr(pos, next - pos));
    pos = next + 1;
  }
  const auto number = [&](std::size_t i) -> double {
    try {
      std::size_t used = 0;
      const double v = std::stod(parts.at(i), &used);
      if (used != parts[i].size() || v < 0)
        throw std::invalid_argument("trailing garbage");
      return v;
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_adversary_spec: bad number '" +
                                  parts.at(i) + "' in '" + spec + "'");
    }
  };
  // Count fields (quiet_after, budget) must be plain integers: stoull, no
  // float round-trip (a double->size_t cast is UB for huge inputs and
  // silently truncates fractional ones).
  const auto count = [&](std::size_t i) -> std::size_t {
    try {
      std::size_t used = 0;
      const unsigned long long v = std::stoull(parts.at(i), &used);
      if (used != parts[i].size())
        throw std::invalid_argument("trailing garbage");
      return static_cast<std::size_t>(v);
    } catch (const std::exception&) {
      throw std::invalid_argument("parse_adversary_spec: bad count '" +
                                  parts.at(i) + "' in '" + spec + "'");
    }
  };
  const auto require_fields = [&](std::size_t min, std::size_t max) {
    if (parts.size() < min || parts.size() > max)
      throw std::invalid_argument("parse_adversary_spec: wrong number of "
                                  "fields in '" + spec + "'");
  };
  // Optional trailing "burst=K" / "burst=inf" field overriding the
  // consecutive-insertion cap.
  if (parts.size() > 1 && parts.back().rfind("burst=", 0) == 0) {
    const std::string v = parts.back().substr(6);
    if (v == "inf" || v == "none")
      p.max_burst = std::numeric_limits<std::size_t>::max();
    else {
      try {
        // stoull would wrap a negative value instead of throwing.
        if (v.empty() || v[0] == '-' || v[0] == '+')
          throw std::invalid_argument("bad burst");
        std::size_t used = 0;
        const unsigned long long b = std::stoull(v, &used);
        if (used != v.size() || b == 0)
          throw std::invalid_argument("bad burst");
        p.max_burst = static_cast<std::size_t>(b);
      } catch (const std::exception&) {
        throw std::invalid_argument(
            "parse_adversary_spec: bad burst cap '" + v + "' in '" + spec +
            "' (want a positive integer or inf)");
      }
    }
    parts.pop_back();
  }
  // Optional "@side" suffix on the kind ("uo@starter:0.2").
  std::string head = parts[0];
  if (const std::size_t at = head.find('@'); at != std::string::npos) {
    const std::string side = head.substr(at + 1);
    head.resize(at);
    if (side == "starter") p.side = OmitSide::Starter;
    else if (side == "reactor") p.side = OmitSide::Reactor;
    else if (side == "both") p.side = OmitSide::Both;
    else
      throw std::invalid_argument("parse_adversary_spec: unknown side '" +
                                  side + "' (want starter|reactor|both)");
  }
  if (head == "uo") {
    require_fields(1, 2);
    p.kind = AdversaryKind::UO;
    if (parts.size() > 1) p.rate = number(1);
  } else if (head == "no") {
    require_fields(2, 3);
    p.kind = AdversaryKind::NO;
    p.quiet_after = count(1);
    if (parts.size() > 2) p.rate = number(2);
  } else if (head == "no1") {
    require_fields(1, 2);
    p.kind = AdversaryKind::NO1;
    p.max_omissions = 1;
    if (parts.size() > 1) p.rate = number(1);
  } else if (head == "budget") {
    require_fields(2, 3);
    p.kind = AdversaryKind::Budget;
    p.max_omissions = count(1);
    if (parts.size() > 2) p.rate = number(2);
  } else {
    throw std::invalid_argument("parse_adversary_spec: unknown kind '" + head +
                                "' (want none|uo|no|no1|budget)");
  }
  if (p.rate < 0.0 || p.rate > 1.0)
    throw std::invalid_argument("parse_adversary_spec: rate must be in [0, 1]");
  return p;
}

OmissionProcess::OmissionProcess(AdversaryParams params) : params_(params) {
  if (params_.kind == AdversaryKind::NO1) params_.max_omissions = 1;
}

bool OmissionProcess::active(std::size_t step) const noexcept {
  if (params_.rate <= 0.0) return false;
  if (emitted_ >= params_.max_omissions) return false;
  if (params_.kind == AdversaryKind::NO && step >= params_.quiet_after)
    return false;
  return true;
}

std::size_t OmissionProcess::remaining_budget() const noexcept {
  return emitted_ >= params_.max_omissions ? 0
                                           : params_.max_omissions - emitted_;
}

std::size_t OmissionProcess::sample_round_omissions(std::size_t deliveries,
                                                    std::size_t step,
                                                    Rng& rng) {
  if (deliveries == 0) return 0;
  if (!active(step)) {
    // Every delivery is real; the first one closes any open burst episode,
    // exactly as should_omit would.
    set_burst(0);
    return 0;
  }
  const double p = params_.rate;
  if (!burst_cap_reachable() && remaining_budget() >= deliveries) {
    // The cap can never bind again (absorbing) and the budget cannot run
    // out mid-round: every delivery is an independent rate coin. Burst
    // bookkeeping is irrelevant from here on, as in the uncapped leaps.
    const std::size_t k = leap::sample_binomial(deliveries, p, rng);
    emitted_ += k;
    return k;
  }
  // Exact episode walk over the within-burst Markov chain, one burst
  // episode per iteration (the mark-only sibling of
  // leap::sample_capped_burst_leg).
  std::size_t om = 0;
  std::size_t i = 0;
  while (i < deliveries) {
    if (!active(step)) {  // budget exhausted mid-round
      set_burst(0);
      break;
    }
    if (burst_ >= params_.max_burst) {
      // A full burst forces the next delivery real (no rate coin).
      set_burst(0);
      ++i;
      continue;
    }
    // Run of real deliveries before the next insertion (each resets the
    // burst, so the insertion probability is p throughout).
    const std::size_t room = deliveries - i;
    const std::size_t run = leap::sample_bernoulli_run(p, rng, room);
    if (run > 0) set_burst(0);
    i += run;
    if (run >= room) break;
    // The next delivery opens (or continues) a burst: the first insertion
    // plus its geometric continuation, truncated by the burst cap, the
    // budget, and the round end.
    const std::size_t limit = std::min(
        {params_.max_burst - burst_, remaining_budget(), deliveries - i});
    const std::size_t k =
        1 + leap::sample_bernoulli_run(1.0 - p, rng, limit - 1);
    om += k;
    emitted_ += k;
    burst_ += k;
    i += k;
    if (k < limit) {
      // The burst ended because the rate coin came up real: consume that
      // real delivery and reset.
      set_burst(0);
      ++i;
    }
    // k == limit: the loop head classifies what bound it (burst cap ->
    // forced real, budget -> real tail, round end -> exit).
  }
  return om;
}

bool OmissionProcess::should_omit(Rng& rng, std::size_t step) {
  if (!active(step) || burst_ >= params_.max_burst || !rng.chance(params_.rate)) {
    if (burst_ > 0) PPFS_METRIC(m_burst_len_, record(burst_));
    burst_ = 0;
    return false;
  }
  ++emitted_;
  ++burst_;
  return true;
}

}  // namespace ppfs

#include "sched/scheduler.hpp"

#include <stdexcept>

namespace ppfs {

UniformScheduler::UniformScheduler(std::size_t n) : n_(n) {
  if (n < 2) throw std::invalid_argument("UniformScheduler: n >= 2 required");
}

Interaction UniformScheduler::next(Rng& rng, std::size_t step) {
  (void)step;
  return uniform_ordered_pair(rng, n_);
}

ScriptedScheduler::ScriptedScheduler(std::vector<Interaction> script,
                                     std::unique_ptr<Scheduler> fallback)
    : script_(std::move(script)), fallback_(std::move(fallback)) {}

Interaction ScriptedScheduler::next(Rng& rng, std::size_t step) {
  if (pos_ < script_.size()) return script_[pos_++];
  if (!fallback_) throw std::logic_error("ScriptedScheduler: script exhausted");
  return fallback_->next(rng, step);
}

}  // namespace ppfs

#include "sched/scheduler.hpp"

#include <stdexcept>

namespace ppfs {

UniformScheduler::UniformScheduler(std::size_t n) : n_(n) {
  if (n < 2) throw std::invalid_argument("UniformScheduler: n >= 2 required");
}

Interaction UniformScheduler::next(Rng& rng, std::size_t step) {
  (void)step;
  const auto s = static_cast<AgentId>(rng.below(n_));
  auto r = static_cast<AgentId>(rng.below(n_ - 1));
  if (r >= s) ++r;  // uniform over ordered pairs with s != r
  return Interaction{s, r, /*omissive=*/false};
}

ScriptedScheduler::ScriptedScheduler(std::vector<Interaction> script,
                                     std::unique_ptr<Scheduler> fallback)
    : script_(std::move(script)), fallback_(std::move(fallback)) {}

Interaction ScriptedScheduler::next(Rng& rng, std::size_t step) {
  if (pos_ < script_.size()) return script_[pos_++];
  if (!fallback_) throw std::logic_error("ScriptedScheduler: script exhausted");
  return fallback_->next(rng, step);
}

}  // namespace ppfs

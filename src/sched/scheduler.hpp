// Schedulers produce the infinite interaction sequence (the "run", §2.1).
//
// The uniform-random scheduler picks ordered pairs uniformly; for
// finite-state systems its runs are globally fair with probability 1, the
// standard way to realize GF empirically. The scripted scheduler replays an
// explicit interaction sequence (used to execute the proof constructions of
// §3 exactly), optionally falling back to another scheduler afterwards —
// mirroring the paper's "extend to an infinite GF run" step.
#pragma once

#include <memory>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace ppfs {

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  // The step index is informational (for adversaries keyed on time).
  [[nodiscard]] virtual Interaction next(Rng& rng, std::size_t step) = 0;

  // True iff this scheduler's interaction distribution is the memoryless
  // uniform one over ordered agent pairs — the distribution the batch
  // engine (engine/batch/) reproduces at the count level. Engines that
  // replace the per-interaction loop with count-level sampling must refuse
  // any scheduler that answers false here (scripted runs, adversaries, and
  // anything keyed on agent identity or time).
  [[nodiscard]] virtual bool uniform_batch_compatible() const noexcept {
    return false;
  }
};

class UniformScheduler final : public Scheduler {
 public:
  explicit UniformScheduler(std::size_t n);
  [[nodiscard]] Interaction next(Rng& rng, std::size_t step) override;
  [[nodiscard]] bool uniform_batch_compatible() const noexcept override {
    return true;
  }

 private:
  std::size_t n_;
};

class ScriptedScheduler final : public Scheduler {
 public:
  // Replays `script`; after it is exhausted, delegates to `fallback`
  // (which may be null only if the caller never asks for more steps).
  ScriptedScheduler(std::vector<Interaction> script,
                    std::unique_ptr<Scheduler> fallback = nullptr);

  [[nodiscard]] Interaction next(Rng& rng, std::size_t step) override;

  [[nodiscard]] std::size_t script_length() const noexcept { return script_.size(); }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= script_.size(); }

 private:
  std::vector<Interaction> script_;
  std::size_t pos_ = 0;
  std::unique_ptr<Scheduler> fallback_;
};

}  // namespace ppfs

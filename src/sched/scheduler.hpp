// Schedulers produce the infinite interaction sequence (the "run", §2.1).
//
// The uniform-random scheduler picks ordered pairs uniformly; for
// finite-state systems its runs are globally fair with probability 1, the
// standard way to realize GF empirically. The scripted scheduler replays an
// explicit interaction sequence (used to execute the proof constructions of
// §3 exactly), optionally falling back to another scheduler afterwards —
// mirroring the paper's "extend to an infinite GF run" step.
#pragma once

#include <memory>
#include <vector>

#include "core/types.hpp"
#include "util/rng.hpp"

namespace ppfs {

// Uniform draw over the n(n-1) ordered agent pairs with distinct members —
// the one pair distribution shared by the uniform scheduler, the omission
// adversaries' victim picks, and the dispatch engines' inserted omissions.
[[nodiscard]] inline Interaction uniform_ordered_pair(Rng& rng, std::size_t n) {
  const auto s = static_cast<AgentId>(rng.below(n));
  auto r = static_cast<AgentId>(rng.below(n - 1));
  if (r >= s) ++r;
  return Interaction{s, r, /*omissive=*/false};
}

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  // The step index is informational (for adversaries keyed on time).
  [[nodiscard]] virtual Interaction next(Rng& rng, std::size_t step) = 0;
};

class UniformScheduler final : public Scheduler {
 public:
  explicit UniformScheduler(std::size_t n);
  [[nodiscard]] Interaction next(Rng& rng, std::size_t step) override;
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

 private:
  std::size_t n_;
};

class ScriptedScheduler final : public Scheduler {
 public:
  // Replays `script`; after it is exhausted, delegates to `fallback`
  // (which may be null only if the caller never asks for more steps).
  ScriptedScheduler(std::vector<Interaction> script,
                    std::unique_ptr<Scheduler> fallback = nullptr);

  [[nodiscard]] Interaction next(Rng& rng, std::size_t step) override;

  [[nodiscard]] std::size_t script_length() const noexcept { return script_.size(); }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ >= script_.size(); }

 private:
  std::vector<Interaction> script_;
  std::size_t pos_ = 0;
  std::unique_ptr<Scheduler> fallback_;
};

}  // namespace ppfs

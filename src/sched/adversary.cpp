#include "sched/adversary.hpp"

#include <stdexcept>

namespace ppfs {

OmissionAdversary::OmissionAdversary(std::unique_ptr<Scheduler> base, std::size_t n,
                                     AdversaryParams params)
    : base_(std::move(base)), n_(n), params_(params) {
  if (!base_) throw std::invalid_argument("OmissionAdversary: null base scheduler");
  if (n_ < 2) throw std::invalid_argument("OmissionAdversary: n >= 2 required");
  if (params_.kind == AdversaryKind::NO1) params_.max_omissions = 1;
}

void OmissionAdversary::set_victim_picker(VictimPicker picker) {
  picker_ = std::move(picker);
}

bool OmissionAdversary::may_insert(std::size_t step) const noexcept {
  if (emitted_ >= params_.max_omissions) return false;
  if (burst_ >= params_.max_burst) return false;
  switch (params_.kind) {
    case AdversaryKind::UO:
      return true;
    case AdversaryKind::NO:
      return step < params_.quiet_after;
    case AdversaryKind::NO1:
    case AdversaryKind::Budget:
      return true;  // bounded by max_omissions above
  }
  return false;
}

Interaction OmissionAdversary::next(Rng& rng, std::size_t step) {
  if (may_insert(step) && rng.chance(params_.rate)) {
    ++emitted_;
    ++burst_;
    if (picker_) {
      Interaction ia = picker_(rng, step);
      ia.omissive = true;
      return ia;
    }
    const auto s = static_cast<AgentId>(rng.below(n_));
    auto r = static_cast<AgentId>(rng.below(n_ - 1));
    if (r >= s) ++r;
    return Interaction{s, r, /*omissive=*/true};
  }
  burst_ = 0;
  return base_->next(rng, step);
}

}  // namespace ppfs

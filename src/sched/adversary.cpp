#include "sched/adversary.hpp"

#include <stdexcept>

namespace ppfs {

OmissionAdversary::OmissionAdversary(std::unique_ptr<Scheduler> base, std::size_t n,
                                     AdversaryParams params)
    : base_(std::move(base)), n_(n), process_(params) {
  if (!base_) throw std::invalid_argument("OmissionAdversary: null base scheduler");
  if (n_ < 2) throw std::invalid_argument("OmissionAdversary: n >= 2 required");
}

void OmissionAdversary::set_victim_picker(VictimPicker picker) {
  picker_ = std::move(picker);
}

Interaction OmissionAdversary::next(Rng& rng, std::size_t step) {
  if (process_.should_omit(rng, step)) {
    if (picker_) {
      Interaction ia = picker_(rng, step);
      ia.omissive = true;
      return ia;
    }
    Interaction ia = uniform_ordered_pair(rng, n_);
    ia.omissive = true;
    ia.side = process_.params().side;
    return ia;
  }
  return base_->next(rng, step);
}

}  // namespace ppfs

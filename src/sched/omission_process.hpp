// OmissionProcess: the omission-insertion state machine of Definitions 1–2,
// factored out of the OmissionAdversary scheduler wrapper so that BOTH
// execution paths consume one definition of the adversary classes:
//
//   * the step-wise path (OmissionAdversary, the dispatch native engine)
//     asks should_omit() before delivering each interaction;
//   * the count-based batch engine (engine/batch/) reads the process
//     parameters (rate / remaining budget / quiet horizon) and splits each
//     leap into real and omissive draws by exact geometric/binomial
//     sampling, crediting the omissions back via note_omissions().
//
// Adversary classes:
//   * UO  ("unfair omissive"): may insert omissions forever;
//   * NO  ("eventually non-omissive"): stops inserting after a horizon;
//   * NO1: inserts at most one omission in the whole run;
//   * Budget(o): inserts at most o omissions (the knowledge-of-omissions
//     assumption of §4.1 bounds the total number of omissions by o).
//
// Both paths honor max_burst (a cap on consecutive insertions): the
// step-wise path through should_omit's burst counter, the batch path
// through an exact Markov-chain leap over the same within-burst state
// (leap::sample_capped_burst_leg and the engines' event-punctuated
// loops), which reads and writes the shared counter via burst() /
// set_burst(). When the cap cannot bind — unbounded max_burst, or too
// little omission budget left to ever complete a burst
// (burst_cap_reachable() false, an absorbing condition since
// burst + remaining budget never increases) — the engines fall back to
// the cheaper uncapped leaps, which are then exact as-is.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "util/audit.hpp"
#include "util/binio.hpp"
#include "util/rng.hpp"

namespace ppfs {

enum class AdversaryKind : std::uint8_t { UO, NO, NO1, Budget };

[[nodiscard]] std::string adversary_kind_name(AdversaryKind k);

struct AdversaryParams {
  AdversaryKind kind = AdversaryKind::UO;
  // Probability of inserting an omissive interaction before each real one
  // (re-rolled after each insertion, geometric burst lengths).
  double rate = 0.1;
  // NO: no omissions are inserted at or after this step index.
  std::size_t quiet_after = std::numeric_limits<std::size_t>::max();
  // Budget / NO1: maximum total omissions (NO1 forces 1).
  std::size_t max_omissions = std::numeric_limits<std::size_t>::max();
  // Cap on consecutive insertions, honored by BOTH engines (the batch
  // path samples the within-burst Markov chain exactly). The spec suffix
  // ":burst=K" / ":burst=inf" overrides it.
  std::size_t max_burst = 8;
  // Which side inserted omissions strike (two-way models; the T-relation
  // faulty outcomes). One-way models have no side distinction and ignore
  // it. Both engines honor this: the native path stamps it on inserted
  // interactions, the batch path selects the matching RuleMatrix outcome
  // class (OmitStarter / OmitReactor / OmitBoth).
  OmitSide side = OmitSide::Both;
};

// Parse a command-line adversary spec:
//   "none" | "uo[:rate]" | "no:quiet[:rate]" | "no1[:rate]" |
//   "budget:B[:rate]"
// e.g. "budget:1000" or "uo:0.05". Returns kind UO with rate 0 for "none".
// The kind may carry a side suffix "@starter" | "@reactor" | "@both"
// (default both), e.g. "uo@starter:0.2" or "budget@reactor:8". A trailing
// ":burst=K" (or ":burst=inf" for unbounded) overrides the default
// consecutive-insertion cap of 8, e.g. "uo:0.2:burst=3".
[[nodiscard]] AdversaryParams parse_adversary_spec(const std::string& spec);

class OmissionProcess {
 public:
  explicit OmissionProcess(AdversaryParams params);

  // Step-wise draw: should the interaction delivered at `step` be an
  // inserted omission? Updates the burst/budget state.
  [[nodiscard]] bool should_omit(Rng& rng, std::size_t step);

  // --- batch-side views -----------------------------------------------------
  // Can any further omission be inserted at or after `step`? Inactivity is
  // absorbing: once false for the current step it stays false forever.
  [[nodiscard]] bool active(std::size_t step) const noexcept;
  [[nodiscard]] double rate() const noexcept { return params_.rate; }
  [[nodiscard]] std::size_t remaining_budget() const noexcept;
  [[nodiscard]] std::size_t quiet_after() const noexcept {
    return params_.quiet_after;
  }
  // Credit `k` omissions sampled by a batch leap.
  void note_omissions(std::size_t k) noexcept { emitted_ += k; }

  // Exact per-ROUND accounting (the round engine's counterpart of the
  // per-leap splits): the number of omissive marks among `deliveries`
  // consecutive deliveries starting at `step`, advancing the burst/budget
  // state exactly as that many should_omit() calls would, in O(burst
  // episodes) draws instead of O(deliveries). The caller must keep the
  // round short of the NO quiet horizon (the round engine caps its length
  // there), so activity changes mid-round only through budget exhaustion,
  // which the walk handles; when the burst cap is unreachable and the
  // budget covers the whole round the count collapses to one
  // Binomial(deliveries, rate) draw.
  [[nodiscard]] std::size_t sample_round_omissions(std::size_t deliveries,
                                                   std::size_t step, Rng& rng);

  // --- shared within-burst state (step-wise should_omit and the batch
  // --- burst-capped leap drive one counter) -------------------------------
  [[nodiscard]] std::size_t burst() const noexcept { return burst_; }
  void set_burst(std::size_t b) noexcept {
    // A reset from a non-zero burst closes one burst episode — both paths
    // (should_omit and the batch leaps) end episodes through here or
    // through should_omit's own reset.
    if (b == 0 && burst_ > 0) PPFS_METRIC(m_burst_len_, record(burst_));
    burst_ = b;
  }
  [[nodiscard]] std::size_t max_burst() const noexcept {
    return params_.max_burst;
  }
  // Can a burst ever reach the cap from the current state? Absorbing once
  // false: burst + remaining budget never increases.
  [[nodiscard]] bool burst_cap_reachable() const noexcept {
    return params_.max_burst != std::numeric_limits<std::size_t>::max() &&
           remaining_budget() > params_.max_burst - burst_;
  }

  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }
  [[nodiscard]] const AdversaryParams& params() const noexcept { return params_; }

  // Checkpoint round-trip. Only the mutable face (emitted/burst) is
  // persisted — params_ are reconstructed from the scenario spec by the
  // resuming process, which keeps the adversary class definition in exactly
  // one place (parse_adversary_spec).
  void save_state(bin::Writer& w) const {
    w.var(emitted_);
    w.var(burst_);
  }
  void restore_state(bin::Reader& r) {
    emitted_ = r.var();
    burst_ = r.var();
  }

  // Wire the burst-episode-length histogram (obs layer); null detaches.
  // Budget drain is pull-style: engines gauge remaining_budget() at
  // snapshot time instead of instrumenting the draw path.
  void set_metrics(obs::MetricRegistry* reg) {
    m_burst_len_ = reg ? &reg->histogram("adv.burst_len") : nullptr;
  }

  // Runtime-contract audit (util/audit.hpp): the emitted total never
  // exceeds the omission budget, and the shared within-burst counter
  // never exceeds a finite burst cap. Cold code, always compiled; the
  // batch systems fold this into their slice-boundary audits under
  // -DPPFS_AUDIT=ON. Throws AuditError.
  void audit_invariants() const {
    static constexpr const char* kWho = "OmissionProcess";
    audit::check(emitted_ <= params_.max_omissions, kWho,
                 "emitted omissions within budget",
                 "budget " + std::to_string(params_.max_omissions) +
                     ", emitted " + std::to_string(emitted_));
    if (params_.max_burst != std::numeric_limits<std::size_t>::max())
      audit::check(burst_ <= params_.max_burst, kWho,
                   "burst counter within the consecutive-insertion cap",
                   "cap " + std::to_string(params_.max_burst) + ", burst " +
                       std::to_string(burst_));
  }

 private:
  friend struct AuditTestPeer;  // mutation-smoke state corruption (tests)

  AdversaryParams params_;
  std::size_t emitted_ = 0;
  std::size_t burst_ = 0;
  obs::Histogram* m_burst_len_ = nullptr;
};

}  // namespace ppfs

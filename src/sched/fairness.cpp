#include "sched/fairness.hpp"

#include <algorithm>
#include <stdexcept>

namespace ppfs {

FairnessAuditor::FairnessAuditor(std::size_t n)
    : n_(n), counts_(n * n, 0), last_seen_(n * n, 0) {
  if (n < 2) throw std::invalid_argument("FairnessAuditor: n >= 2 required");
}

void FairnessAuditor::observe(const Interaction& ia) {
  ++step_;
  if (ia.omissive) return;  // only real interactions count toward GF
  if (ia.starter >= n_ || ia.reactor >= n_ || ia.starter == ia.reactor)
    throw std::invalid_argument("FairnessAuditor: bad interaction");
  const std::size_t i = idx(ia.starter, ia.reactor);
  if (last_seen_[i] != 0) max_gap_ = std::max(max_gap_, step_ - last_seen_[i]);
  last_seen_[i] = step_;
  ++counts_[i];
}

std::size_t FairnessAuditor::pairs_covered() const {
  std::size_t covered = 0;
  for (AgentId s = 0; s < n_; ++s)
    for (AgentId r = 0; r < n_; ++r)
      if (s != r && counts_[idx(s, r)] > 0) ++covered;
  return covered;
}

bool FairnessAuditor::all_pairs_covered() const {
  // ppfs-lint: allow(weight-mul): the auditor tracks per-agent pairs, so
  // n_ is a small test-scale population; n_(n_-1) is nowhere near 2^64.
  return pairs_covered() == n_ * (n_ - 1);
}

std::size_t FairnessAuditor::max_current_gap() const {
  std::size_t worst = 0;
  for (AgentId s = 0; s < n_; ++s)
    for (AgentId r = 0; r < n_; ++r) {
      if (s == r) continue;
      worst = std::max(worst, step_ - last_seen_[idx(s, r)]);
    }
  return worst;
}

std::size_t FairnessAuditor::count(AgentId s, AgentId r) const {
  if (s >= n_ || r >= n_) throw std::out_of_range("FairnessAuditor::count");
  return counts_[idx(s, r)];
}

}  // namespace ppfs

// Omission adversaries (Definitions 1–2 of the paper).
//
// An adversary wraps a base scheduler (whose output it must deliver
// unchanged and in order — this preserves global fairness of the real
// interactions) and inserts omissive interactions between base picks. The
// insertion policy (UO / NO / NO1 / Budget) lives in OmissionProcess
// (sched/omission_process.hpp), which the count-based batch engine consumes
// directly; this wrapper is the step-wise Scheduler face of the same
// process.
//
// The victims of inserted omissions are chosen uniformly unless a victim
// picker is installed (targeted adversaries used by stress tests).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "sched/omission_process.hpp"
#include "sched/scheduler.hpp"

namespace ppfs {

class OmissionAdversary final : public Scheduler {
 public:
  using VictimPicker = std::function<Interaction(Rng&, std::size_t step)>;

  OmissionAdversary(std::unique_ptr<Scheduler> base, std::size_t n,
                    AdversaryParams params);

  // Install a custom victim picker for inserted omissive interactions
  // (the returned Interaction's `omissive` flag is forced to true).
  void set_victim_picker(VictimPicker picker);

  [[nodiscard]] Interaction next(Rng& rng, std::size_t step) override;

  [[nodiscard]] std::size_t omissions_emitted() const noexcept {
    return process_.emitted();
  }
  [[nodiscard]] const OmissionProcess& process() const noexcept {
    return process_;
  }

 private:
  std::unique_ptr<Scheduler> base_;
  std::size_t n_;
  OmissionProcess process_;
  VictimPicker picker_;
};

}  // namespace ppfs

// Omission adversaries (Definitions 1–2 of the paper).
//
// An adversary wraps a base scheduler (whose output it must deliver
// unchanged and in order — this preserves global fairness of the real
// interactions) and inserts omissive interactions between base picks:
//
//   * UO  ("unfair omissive"): may insert omissions forever;
//   * NO  ("eventually non-omissive"): stops inserting after a horizon;
//   * NO1: inserts at most one omission in the whole run;
//   * Budget(o): inserts at most o omissions (the knowledge-of-omissions
//     assumption of §4.1 bounds the total number of omissions by o).
//
// The victims of inserted omissions are chosen uniformly unless a victim
// picker is installed (targeted adversaries used by stress tests).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "sched/scheduler.hpp"

namespace ppfs {

enum class AdversaryKind : std::uint8_t { UO, NO, NO1, Budget };

struct AdversaryParams {
  AdversaryKind kind = AdversaryKind::UO;
  // Probability of inserting an omissive interaction before each real one
  // (re-rolled after each insertion, geometric burst lengths).
  double rate = 0.1;
  // NO: no omissions are inserted at or after this step index.
  std::size_t quiet_after = std::numeric_limits<std::size_t>::max();
  // Budget / NO1: maximum total omissions (NO1 forces 1).
  std::size_t max_omissions = std::numeric_limits<std::size_t>::max();
  // Cap on consecutive insertions (keeps bursts finite, Def. 1).
  std::size_t max_burst = 8;
};

class OmissionAdversary final : public Scheduler {
 public:
  using VictimPicker = std::function<Interaction(Rng&, std::size_t step)>;

  OmissionAdversary(std::unique_ptr<Scheduler> base, std::size_t n,
                    AdversaryParams params);

  // Install a custom victim picker for inserted omissive interactions
  // (the returned Interaction's `omissive` flag is forced to true).
  void set_victim_picker(VictimPicker picker);

  [[nodiscard]] Interaction next(Rng& rng, std::size_t step) override;

  [[nodiscard]] std::size_t omissions_emitted() const noexcept { return emitted_; }

 private:
  [[nodiscard]] bool may_insert(std::size_t step) const noexcept;

  std::unique_ptr<Scheduler> base_;
  std::size_t n_;
  AdversaryParams params_;
  VictimPicker picker_;
  std::size_t emitted_ = 0;
  std::size_t burst_ = 0;
};

}  // namespace ppfs

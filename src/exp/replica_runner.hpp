// Multi-threaded replica execution for scenario sweeps.
//
// ReplicaRunner owns a fixed-size worker pool that drains a flattened
// (point, trial) job list. Replica RNG streams are keyed — trial t of a
// point runs with Rng(point_seed).split(t) — and every replica writes into
// its own preallocated slot, so results and the per-point aggregates are
// bit-identical no matter how many threads run or how the scheduler
// interleaves them. Aggregation always folds completed replicas in trial
// order.
//
// "Failure" means a replica threw (bad spec, engine invariant violation) —
// not that it failed to converge; non-convergence is a legitimate
// distributional outcome that convergence_rate reports. With
// cancel_on_failure set, the first failure stops NEW replicas from
// starting (in-flight ones finish); skipped replicas are recorded as
// failed with error "cancelled". Which replicas get skipped depends on
// scheduling, so the bit-identical guarantee above holds unconditionally
// only for cancel_on_failure = false (the default) — or trivially on
// failure-free sweeps, where cancellation never fires.
#pragma once

#include <functional>
#include <vector>

#include "exp/report.hpp"
#include "exp/scenario.hpp"

namespace ppfs::exp {

struct RunnerOptions {
  // 0 = std::thread::hardware_concurrency (min 1). With threads == 1 no
  // worker threads are spawned; replicas run inline on the caller.
  std::size_t threads = 0;
  bool cancel_on_failure = false;
  // Invoked once per replica — completed or skipped-as-cancelled —
  // serialized under a mutex (may be called from worker threads, but never
  // concurrently); a progress counter driven by it always reaches the
  // total replica count.
  std::function<void(const ScenarioSpec&, std::size_t trial,
                     const ReplicaResult&)>
      on_replica;
  // Like on_replica (same mutex, same cadence) but keyed by point INDEX —
  // what the sweep service's checkpoint writer needs to identify the job
  // without re-deriving grid positions from specs.
  std::function<void(std::size_t point, std::size_t trial,
                     const ReplicaResult&)>
      on_job;
};

// One (point, trial) cell of a sweep's flattened job list.
struct ReplicaJob {
  std::size_t point = 0;
  std::size_t trial = 0;
};

// The outcome of one scenario point: the aggregate plus the per-replica
// results it was folded from (trial order).
struct ScenarioOutcome {
  AggregateStats aggregate;
  std::vector<ReplicaResult> replicas;
};

class ReplicaRunner {
 public:
  explicit ReplicaRunner(RunnerOptions options = {});

  // Number of worker threads the pool will use.
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  // All trials of one point.
  [[nodiscard]] ScenarioOutcome run(const ScenarioSpec& spec);

  // A set of points (typically ScenarioGrid::expand()); the whole job list
  // is drained by one pool, so small-trial points still saturate the
  // machine. Report rows are in `points` order.
  [[nodiscard]] Report run_points(const std::vector<ScenarioSpec>& points);

  // Drain an explicit job subset — the sweep service's shard/resume path.
  // Returns the full results matrix (results[point][trial], sized from
  // `points`); jobs not listed keep default-constructed slots. Listing a
  // job twice runs it twice (last write wins — callers pass disjoint
  // lists). Each job's result depends only on (spec, trial), never on
  // which other jobs share the drain.
  [[nodiscard]] std::vector<std::vector<ReplicaResult>> run_jobs(
      const std::vector<ScenarioSpec>& points,
      const std::vector<ReplicaJob>& jobs);

  [[nodiscard]] Report run_grid(const ScenarioGrid& grid) {
    return run_points(grid.expand());
  }

 private:
  RunnerOptions options_;
  std::size_t threads_;
};

// Convenience: run one scenario with default-constructed runner options
// (override via `options`).
[[nodiscard]] ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                                           const RunnerOptions& options = {});

}  // namespace ppfs::exp

// Declarative experiment scenarios: one description of "what to run" that
// the CLI, the bench harnesses and the tests all share, instead of each
// binary hand-rolling its own sweep loops and flag handling.
//
// A ScenarioSpec is one concrete run point — workload, population size,
// engine kind, interaction model, adversary spec, optional simulator
// wrapper, trial count and run control. A ScenarioGrid is the declarative
// sweep: per-axis value lists whose cross product expand() turns into
// concrete ScenarioSpecs in a documented, deterministic order.
//
// Grids have a compact string form, parsed by parse_grid — the one grammar
// behind `ppfs_cli --sweep` and anything else that wants a textual sweep:
//
//   grid      := workloads [ '@' field (':' field)* ]
//   workloads := name (',' name)*            (registry prefix match)
//   field     := key '=' values | continuation
//   values    := value (',' value)*          (lists only on axis keys)
//
// Axis keys (multi-valued): n (sizes, 1e6 notation allowed), model,
// engine, adv (sched/omission_process.hpp spec form), sim
// (sim/sim_rules.hpp spec form). Scalar keys: trials, seed, steps (fixed
// interaction count, no probe), maxsteps, checkevery, stable, probe
// (workload | activation), verify (0/1: matching verification on native
// simulator runs). A segment whose text before '=' is not a known key
// continues the previous field's value with the ':' restored — that is how
// `adv=budget:1000:burst=4` or `sim=skno:o=2` survive the top-level ':'
// split, e.g.
//
//   exact-majority@n=1e6:model=T3:adv=budget:1000:engine=batch:trials=64
//   or,max@n=256,1024:engine=native,batch:trials=8:seed=7
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "engine/runner.hpp"
#include "exp/aggregate.hpp"
#include "protocols/registry.hpp"

namespace ppfs::exp {

// One concrete run point. Everything that influences the chain is in here
// (plus the trial index); replica RNG streams are keyed off
// (seed, point_key(), trial), so a point's results never depend on which
// other points share the sweep or on scheduling.
struct ScenarioSpec {
  std::string workload = "exact-majority";
  std::size_t n = 100;
  std::string engine = "batch";    // "native" | "batch" | "auto"
  std::optional<Model> model{};    // unset -> TW, or the simulator's model
  std::string adversary = "none";  // parse_adversary_spec form
  std::string sim;                 // empty = direct run; parse_sim_spec form
  std::size_t trials = 1;
  std::uint64_t seed = 42;

  // Run control. 0 = engine-aware default (see resolve_run_options).
  std::size_t max_steps = 0;
  std::size_t check_every = 0;
  std::size_t stable_checks = 3;
  // > 0: drive exactly this many interactions, no convergence probe.
  std::size_t fixed_steps = 0;
  // "workload" = the workload's own probe; "activation" = the naming
  // simulator's all-activated predicate (native naming runs only).
  std::string probe = "workload";
  // Native simulator runs only: record SimEvents and verify the
  // Definition-3 matching, reporting extras sim_pairs / unmatched /
  // matching_ok / overhead.
  bool verify_matching = false;
  // Matching-verification tolerance: at most this many unmatched events
  // per agent (verify_simulation's max_unmatched = factor * n). The SKnO
  // harnesses historically allowed 4, SID/naming the tighter 2.
  std::size_t max_unmatched_per_n = 4;

  // Flight-recorder cadence in interactions; 0 = telemetry off. Engine
  // replicas with metrics_every > 0 enable the engine's MetricRegistry,
  // attach an obs::FlightRecorder and report the timeline in
  // ReplicaResult::flight plus deterministic registry totals as "m.*"
  // extras. Deliberately NOT part of point_key(): instrumentation never
  // consumes Rng draws, so attaching a recorder cannot change any result —
  // a point's identity must not depend on whether it was observed.
  std::size_t metrics_every = 0;

  // Trajectory-capture cadence in interactions; 0 = off. Engine-backed
  // probe-loop replicas with traj_every > 0 record the projected count
  // vector at every probe slice that crosses the cadence, delta-encoded
  // (util/trajectory.hpp) into ReplicaResult::traj. Like metrics_every,
  // NOT part of point_key(): captures read counts only, never Rng draws.
  std::size_t traj_every = 0;

  // Registry bypass for programmatic scenarios (benches sweeping custom
  // protocols). When set, `workload` is just the display label.
  std::shared_ptr<const Workload> custom{};

  // Canonical compact form (the grid grammar, single-valued).
  [[nodiscard]] std::string to_string() const;
  // to_string without trials/seed: the stable identity that replica RNG
  // streams are keyed on.
  [[nodiscard]] std::string point_key() const;
  // Base seed for this point's replica streams; trial t runs with
  // Rng(point_seed()).split(t).
  [[nodiscard]] std::uint64_t point_seed() const;
};

// The declarative sweep. expand() crosses the axes in the fixed order
// workload -> n -> model -> adversary -> sim -> engine (innermost last),
// so row order is reproducible and documented.
struct ScenarioGrid {
  std::vector<std::string> workloads{"exact-majority"};
  std::vector<std::size_t> sizes{100};
  std::vector<std::string> models{};  // empty = one unset (default) entry
  std::vector<std::string> adversaries{"none"};
  std::vector<std::string> sims{""};  // "" = direct run
  std::vector<std::string> engines{"batch"};
  std::size_t trials = 1;
  std::uint64_t seed = 42;
  std::size_t max_steps = 0;
  std::size_t check_every = 0;
  std::size_t stable_checks = 3;
  std::size_t fixed_steps = 0;
  std::string probe = "workload";
  bool verify_matching = false;
  std::size_t max_unmatched_per_n = 4;
  std::size_t metrics_every = 0;
  std::size_t traj_every = 0;

  [[nodiscard]] std::vector<ScenarioSpec> expand() const;
  [[nodiscard]] std::size_t points() const noexcept {
    return workloads.size() * sizes.size() * std::max<std::size_t>(1, models.size()) *
           adversaries.size() * sims.size() * engines.size();
  }
};

// Parse the compact grid string (grammar above). Throws
// std::invalid_argument with a pointed message on malformed input.
[[nodiscard]] ScenarioGrid parse_grid(const std::string& text);

// The model a spec actually runs under before any adversary lift: the
// explicit one, else the simulator's design model, else TW.
[[nodiscard]] Model resolve_model(const ScenarioSpec& spec);

// The engine-aware RunOptions defaults the CLI historically used: batch
// engines get no-op-leap-sized budgets, native engines per-interaction
// ones, simulator runs fire-sized ones.
[[nodiscard]] RunOptions resolve_run_options(const ScenarioSpec& spec);

// Execute one replica of `spec` (trial index = RNG stream id). Throws on
// invalid specs; the runner catches and records errors per replica. If
// `stats_out` is non-null the replica's full RunStats are copied there
// (engine-backed runs only; native simulator facade runs have no RunStats
// and leave it reset).
[[nodiscard]] ReplicaResult run_replica(const ScenarioSpec& spec,
                                        std::size_t trial,
                                        RunStats* stats_out = nullptr);

// --- in-flight replica checkpointing (sweep service) ------------------------
// A snapshot of one replica caught mid-run at a probe-slice boundary: the
// engine's serialized state, the replica's keyed Rng stream position, and
// the probe harness's two progress scalars. Restoring all three into a
// freshly constructed replica continues the exact trajectory.
struct ReplicaSnapshot {
  std::string engine;  // Engine::save_state payload
  Rng::Snapshot rng{};
  std::size_t harness_steps = 0;        // RunProgress::steps
  std::size_t harness_consecutive = 0;  // RunProgress::consecutive
};

using SnapshotHook = std::function<void(const ReplicaSnapshot&)>;

// run_replica with mid-run checkpoint support. When `on_snapshot` is set
// and `snapshot_every` > 0, the replica captures a ReplicaSnapshot at the
// first probe-slice boundary after each cadence interval — but ONLY when
// the capture is exactness-safe: an engine-backed probe-loop replica
// (no native sim facade, no fixed_steps, probe=workload) with
// metrics_every == 0 and traj_every == 0 whose engine reports
// checkpoint_exact(). Ineligible replicas simply run without capturing.
// A non-null `resume` continues from a previously captured snapshot (the
// spec/trial must match the one it was captured from; restoring into an
// ineligible replica throws).
[[nodiscard]] ReplicaResult run_replica_resumable(
    const ScenarioSpec& spec, std::size_t trial, const ReplicaSnapshot* resume,
    const SnapshotHook& on_snapshot, std::size_t snapshot_every);

}  // namespace ppfs::exp

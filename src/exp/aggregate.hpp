// Mergeable per-scenario statistics for the experiment layer.
//
// Every trial of a scenario point produces one ReplicaResult; a scenario's
// AggregateStats is the associative fold of its replicas in trial order.
// Because add() and merge() are associative and order-insensitive (sorted
// sample multisets, integer-exact sums), a sweep aggregated by one thread
// is byte-identical to the same sweep aggregated by sixteen — the property
// the determinism tests (tests/exp_determinism_test.cpp) pin down.
//
// Quantiles are exact: trial counts are small (tens to low thousands), so
// we keep the sorted interaction-count samples and answer p50/p90/p99 by
// nearest-rank lookup instead of a streaming P^2 estimate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "engine/stats.hpp"

namespace ppfs::exp {

// The outcome of one replica (one trial of one scenario point). `extras`
// carries scenario-kind-specific metrics — matching-verification results,
// simulator memory/rollback/naming counters — keyed by stable names so
// they aggregate and report generically.
struct ReplicaResult {
  RunResult run{};
  std::size_t convergence_step = RunStats::kNoConvergence;
  std::uint64_t fires = 0;
  std::uint64_t noops = 0;
  std::uint64_t omissive_fires = 0;
  std::map<std::string, double> extras;
  // Flight-recorder timeline (newline-terminated JSONL, schema
  // ppfs.flight.v1); empty unless the scenario set metrics_every > 0.
  // Carried per replica, not aggregated — consumers (ppfs_cli
  // --metrics-out) concatenate them in trial order.
  std::string flight;
  // Delta-encoded trajectory frames (util/trajectory.hpp); empty unless
  // the scenario set traj_every > 0. Like `flight`, carried per replica
  // and persisted by the sweep service's trajectory store, never
  // aggregated.
  std::string traj;
  // Non-empty = the replica threw (or was cancelled); excluded from every
  // distributional column, counted in failed().
  std::string error;
  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
};

class AggregateStats {
 public:
  // Fold one replica in.
  void add(const ReplicaResult& r);
  // Fold another aggregate in; associative and order-insensitive.
  void merge(const AggregateStats& o);

  [[nodiscard]] std::size_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::size_t failed() const noexcept { return failed_; }
  [[nodiscard]] std::size_t completed() const noexcept {
    return trials_ - failed_;
  }
  [[nodiscard]] std::size_t converged() const noexcept { return converged_; }
  [[nodiscard]] double convergence_rate() const noexcept {
    return completed() ? static_cast<double>(converged_) / completed() : 0.0;
  }

  // Physical interaction counts across completed replicas.
  [[nodiscard]] const StreamStat& interactions() const noexcept {
    return interactions_;
  }
  // Exact nearest-rank quantile over the sorted samples (q in [0, 1]).
  [[nodiscard]] std::uint64_t interactions_quantile(double q) const;
  [[nodiscard]] const std::vector<std::uint64_t>& interaction_samples()
      const noexcept {
    return samples_;
  }

  // Convergence step (RunStats::convergence_step) over converged replicas.
  [[nodiscard]] const StreamStat& convergence_steps() const noexcept {
    return convergence_steps_;
  }

  // Omission accounting totals across completed replicas.
  [[nodiscard]] std::uint64_t omissions() const noexcept { return omissions_; }
  [[nodiscard]] std::uint64_t omissive_fires() const noexcept {
    return omissive_fires_;
  }
  [[nodiscard]] std::uint64_t fires() const noexcept { return fires_; }
  [[nodiscard]] std::uint64_t noops() const noexcept { return noops_; }

  [[nodiscard]] const std::map<std::string, StreamStat>& extras()
      const noexcept {
    return extras_;
  }

  // Byte-stable serialization (hexfloat doubles) — what the determinism
  // tests compare across thread counts.
  [[nodiscard]] std::string fingerprint() const;

  // Binary round-trip for sweep partials (bit-exact doubles via
  // util/binio.hpp): a restored aggregate compares equal to the original.
  void save_state(bin::Writer& w) const;
  void restore_state(bin::Reader& r);

  friend bool operator==(const AggregateStats&, const AggregateStats&) = default;

 private:
  std::size_t trials_ = 0;
  std::size_t converged_ = 0;
  std::size_t failed_ = 0;
  std::vector<std::uint64_t> samples_;  // sorted, completed replicas only
  StreamStat interactions_;
  StreamStat convergence_steps_;
  std::uint64_t omissions_ = 0;
  std::uint64_t fires_ = 0;
  std::uint64_t noops_ = 0;
  std::uint64_t omissive_fires_ = 0;
  std::map<std::string, StreamStat> extras_;
};

}  // namespace ppfs::exp

#include "exp/replica_runner.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace ppfs::exp {

ReplicaRunner::ReplicaRunner(RunnerOptions options)
    : options_(std::move(options)) {
  threads_ = options_.threads;
  if (threads_ == 0) {
    threads_ = std::thread::hardware_concurrency();
    if (threads_ == 0) threads_ = 1;
  }
}

ScenarioOutcome ReplicaRunner::run(const ScenarioSpec& spec) {
  Report report = run_points({spec});
  ScenarioOutcome out;
  out.aggregate = report.rows().front().aggregate;
  out.replicas = std::move(report.rows_mutable().front().replicas);
  return out;
}

std::vector<std::vector<ReplicaResult>> ReplicaRunner::run_jobs(
    const std::vector<ScenarioSpec>& points,
    const std::vector<ReplicaJob>& jobs) {
  std::vector<std::vector<ReplicaResult>> results(points.size());
  for (std::size_t p = 0; p < points.size(); ++p)
    results[p].resize(std::max<std::size_t>(1, points[p].trials));

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::mutex callback_mutex;

  const auto worker = [&]() {
    while (true) {
      const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
      if (j >= jobs.size()) return;
      const ReplicaJob job = jobs[j];
      ReplicaResult& slot = results[job.point][job.trial];
      if (cancelled.load(std::memory_order_relaxed)) {
        slot.error = "cancelled";
      } else {
        try {
          slot = run_replica(points[job.point], job.trial);
        } catch (const std::exception& e) {
          slot.error = e.what();
        } catch (...) {
          slot.error = "unknown error";
        }
        if (slot.failed() && options_.cancel_on_failure)
          cancelled.store(true, std::memory_order_relaxed);
      }
      if (options_.on_replica || options_.on_job) {
        const std::lock_guard<std::mutex> lock(callback_mutex);
        if (options_.on_replica)
          options_.on_replica(points[job.point], job.trial, slot);
        if (options_.on_job) options_.on_job(job.point, job.trial, slot);
      }
    }
  };

  const std::size_t pool = std::min(threads_, std::max<std::size_t>(1, jobs.size()));
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (std::size_t i = 0; i < pool; ++i) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  return results;
}

Report ReplicaRunner::run_points(const std::vector<ScenarioSpec>& points) {
  std::vector<ReplicaJob> jobs;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const std::size_t trials = std::max<std::size_t>(1, points[p].trials);
    for (std::size_t t = 0; t < trials; ++t) jobs.push_back({p, t});
  }
  std::vector<std::vector<ReplicaResult>> results = run_jobs(points, jobs);

  // Fold in trial order — the merge order is fixed by construction, never
  // by scheduling, which is what keeps aggregates byte-identical across
  // thread counts.
  Report report;
  for (std::size_t p = 0; p < points.size(); ++p) {
    AggregateStats agg;
    for (const ReplicaResult& r : results[p]) agg.add(r);
    report.add(points[p], std::move(agg), std::move(results[p]));
  }
  return report;
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             const RunnerOptions& options) {
  return ReplicaRunner(options).run(spec);
}

}  // namespace ppfs::exp

// Sharded, resumable sweep service over the experiment layer.
//
// A sweep is a flattened (point, trial) job list — point-major, trial-minor,
// the one enumeration ReplicaRunner, sharding and checkpointing all share.
// Because every replica is a pure function of (spec, trial) — its Rng
// stream is keyed, never shared — the list can be cut anywhere and executed
// by any process at any thread count without changing a single byte of the
// final report. This header packages the three service facets built on
// that property:
//
//   * SHARD/MERGE. shard_jobs() deals job i to shard (i mod k) — a
//     deterministic round-robin that load-balances points across shards —
//     and encode_partial() persists one shard's results as a versioned
//     binary partial (provenance header + per-point shard-local
//     AggregateStats + raw replica results). merge_partials() refuses
//     mismatched provenance, verifies the shards form a DISJOINT COMPLETE
//     cover of the job list, cross-checks every stored aggregate against a
//     refold of its own replicas, and folds the union matrix in trial
//     order — producing a Report byte-identical to the 1-process run.
//
//   * CHECKPOINT/RESUME. run_sweep_shard() can atomically rewrite a
//     checkpoint file (write temp + rename, bin::atomic_write_file) after
//     every completed replica, and — on single-threaded drains of
//     exactness-safe replicas — embed an in-flight ReplicaSnapshot
//     (engine state + Rng position + harness progress) captured at probe
//     slice boundaries every `snapshot_every` interactions. Resuming after
//     a SIGKILL re-runs nothing that completed and continues an embedded
//     in-flight replica mid-run; either way the final aggregates are
//     byte-identical to the uninterrupted sweep.
//
//   * TRAJECTORIES. trajectory_records() collects the per-replica
//     delta-encoded count trajectories (ScenarioSpec::traj_every) into
//     store records; util/trajectory.hpp's store codec and ppfs_trajcat
//     merge them across shards post hoc.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/replica_runner.hpp"
#include "util/binio.hpp"
#include "util/trajectory.hpp"

namespace ppfs::exp {

// Identity every partial and checkpoint carries. Two files inter-operate
// (merge, resume) only when everything here except shard_index matches:
// the job list and every replica's stream are functions of these fields.
struct SweepProvenance {
  std::string grid;  // grid text (parse_grid form)
  std::size_t trials = 1;
  std::uint64_t seed = 42;
  std::size_t metrics_every = 0;
  std::size_t traj_every = 0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  friend bool operator==(const SweepProvenance&,
                         const SweepProvenance&) = default;
  // Everything except shard_index equal?
  [[nodiscard]] bool compatible(const SweepProvenance& o) const;
  // The expanded grid points this provenance describes (grid text parsed,
  // trials/seed/cadence overrides re-applied).
  [[nodiscard]] std::vector<ScenarioSpec> expand_points() const;
};

// The flattened job list: point-major, trial-minor (identical to
// ReplicaRunner::run_points's enumeration).
[[nodiscard]] std::vector<ReplicaJob> sweep_jobs(
    const std::vector<ScenarioSpec>& points);

// Round-robin slice owned by shard `index` of `count`: jobs whose global
// index is congruent to `index` mod `count`, in job order. Throws on
// index >= count or count == 0.
[[nodiscard]] std::vector<ReplicaJob> shard_jobs(
    const std::vector<ReplicaJob>& jobs, std::size_t index,
    std::size_t count);

// ReplicaResult binary round-trip (field-complete, including flight and
// trajectory payloads).
void save_replica_result(bin::Writer& w, const ReplicaResult& r);
[[nodiscard]] ReplicaResult load_replica_result(bin::Reader& r);

// --- partials ---------------------------------------------------------------

// Serialize one shard's owned results (results[point][trial] filled for
// every job in `owned`) as a partial image.
[[nodiscard]] std::string encode_partial(
    const SweepProvenance& prov, const std::vector<ScenarioSpec>& points,
    const std::vector<std::vector<ReplicaResult>>& results,
    const std::vector<ReplicaJob>& owned);

// Decode just a partial's provenance header (cheap — stops before the
// results payload). The CLI merge path uses it to recover the sweep's
// metrics/trajectory cadences for its own output files.
[[nodiscard]] SweepProvenance partial_provenance(std::string_view image);

// Fold partial images into the full-sweep Report — byte-identical to the
// 1-process run of the same provenance at any thread count. Throws
// std::runtime_error on bad magic/version, mismatched provenance,
// overlapping or incomplete shard covers, or an aggregate that fails its
// refold cross-check.
[[nodiscard]] Report merge_partials(const std::vector<std::string>& images);

// --- checkpoints ------------------------------------------------------------

struct SweepCheckpoint {
  SweepProvenance prov;
  // (global job index, result) for every finished replica, in completion
  // order. Indices refer to sweep_jobs(prov.expand_points()).
  std::vector<std::pair<std::size_t, ReplicaResult>> completed;
  // At most one in-flight replica (single-threaded drains only).
  bool has_inflight = false;
  std::size_t inflight_job = 0;
  ReplicaSnapshot inflight{};
};

[[nodiscard]] std::string encode_checkpoint(const SweepCheckpoint& ck);
[[nodiscard]] SweepCheckpoint decode_checkpoint(std::string_view image);

// --- the service ------------------------------------------------------------

struct SweepServiceOptions {
  std::size_t threads = 0;  // ReplicaRunner semantics (0 = hardware)
  // Checkpoint file path; empty disables checkpointing. The file is
  // atomically rewritten after every completed replica.
  std::string checkpoint_file;
  // > 0: additionally embed in-flight engine snapshots every this many
  // interactions (exactness-safe replicas on single-threaded drains only;
  // ignored otherwise).
  std::size_t snapshot_every = 0;
  // Resume from this checkpoint image (decode_checkpoint result). Null =
  // fresh start.
  const SweepCheckpoint* resume = nullptr;
  // Progress callback, serialized; (done, total) count this shard's jobs.
  std::function<void(std::size_t done, std::size_t total,
                     const ScenarioSpec& spec, std::size_t trial,
                     const ReplicaResult& r)>
      on_replica;
};

struct SweepRun {
  std::vector<ScenarioSpec> points;
  // Full matrix; only this shard's owned slots are meaningful.
  std::vector<std::vector<ReplicaResult>> results;
  std::vector<ReplicaJob> owned;  // this shard's job slice, job order
};

// Execute (or resume) the shard `prov` describes. Throws on a resume
// checkpoint whose provenance is incompatible with `prov`.
[[nodiscard]] SweepRun run_sweep_shard(const SweepProvenance& prov,
                                       const SweepServiceOptions& opt);

// Fold a COMPLETE results matrix (every trial of every point present —
// the shard_count == 1 case) into the standard Report.
[[nodiscard]] Report fold_report(
    const std::vector<ScenarioSpec>& points,
    std::vector<std::vector<ReplicaResult>> results);

// Collect the non-empty trajectory blobs of this shard's owned slots into
// store records, (point, trial) order.
[[nodiscard]] std::vector<TrajectoryRecord> trajectory_records(
    const SweepRun& run, std::size_t traj_every);

}  // namespace ppfs::exp

#include "exp/aggregate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ppfs::exp {

void AggregateStats::add(const ReplicaResult& r) {
  ++trials_;
  if (r.failed()) {
    ++failed_;
    return;
  }
  const auto steps = static_cast<std::uint64_t>(r.run.steps);
  samples_.insert(std::upper_bound(samples_.begin(), samples_.end(), steps),
                  steps);
  interactions_.add(static_cast<double>(steps));
  if (r.run.converged) {
    ++converged_;
    if (r.convergence_step != RunStats::kNoConvergence)
      convergence_steps_.add(static_cast<double>(r.convergence_step));
  }
  omissions_ += r.run.omissions;
  fires_ += r.fires;
  noops_ += r.noops;
  omissive_fires_ += r.omissive_fires;
  for (const auto& [key, value] : r.extras) extras_[key].add(value);
}

void AggregateStats::merge(const AggregateStats& o) {
  trials_ += o.trials_;
  converged_ += o.converged_;
  failed_ += o.failed_;
  std::vector<std::uint64_t> merged;
  merged.reserve(samples_.size() + o.samples_.size());
  std::merge(samples_.begin(), samples_.end(), o.samples_.begin(),
             o.samples_.end(), std::back_inserter(merged));
  samples_ = std::move(merged);
  interactions_.merge(o.interactions_);
  convergence_steps_.merge(o.convergence_steps_);
  omissions_ += o.omissions_;
  fires_ += o.fires_;
  noops_ += o.noops_;
  omissive_fires_ += o.omissive_fires_;
  for (const auto& [key, stat] : o.extras_) extras_[key].merge(stat);
}

std::uint64_t AggregateStats::interactions_quantile(double q) const {
  if (samples_.empty()) return 0;
  const double clamped = std::min(1.0, std::max(0.0, q));
  // Nearest-rank: the smallest sample with rank >= ceil(q * count).
  const auto rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

std::string AggregateStats::fingerprint() const {
  std::ostringstream out;
  out << std::hexfloat;
  out << "trials=" << trials_ << ";converged=" << converged_
      << ";failed=" << failed_ << ";omissions=" << omissions_
      << ";fires=" << fires_ << ";noops=" << noops_
      << ";omissive_fires=" << omissive_fires_;
  out << ";samples=";
  for (const std::uint64_t s : samples_) out << s << ',';
  out << ";interactions=" << interactions_.count() << ':' << interactions_.sum()
      << ':' << interactions_.min() << ':' << interactions_.max();
  out << ";conv_steps=" << convergence_steps_.count() << ':'
      << convergence_steps_.sum() << ':' << convergence_steps_.min() << ':'
      << convergence_steps_.max();
  for (const auto& [key, stat] : extras_) {
    out << ";extra." << key << '=' << stat.count() << ':' << stat.sum() << ':'
        << stat.min() << ':' << stat.max();
  }
  return out.str();
}

void AggregateStats::save_state(bin::Writer& w) const {
  w.var(trials_);
  w.var(converged_);
  w.var(failed_);
  w.var(samples_.size());
  for (const std::uint64_t s : samples_) w.var(s);
  interactions_.save_state(w);
  convergence_steps_.save_state(w);
  w.var(omissions_);
  w.var(fires_);
  w.var(noops_);
  w.var(omissive_fires_);
  w.var(extras_.size());
  for (const auto& [key, stat] : extras_) {
    w.str(key);
    stat.save_state(w);
  }
}

void AggregateStats::restore_state(bin::Reader& r) {
  trials_ = r.var();
  converged_ = r.var();
  failed_ = r.var();
  samples_.resize(r.var());
  for (auto& s : samples_) s = r.var();
  interactions_.restore_state(r);
  convergence_steps_.restore_state(r);
  omissions_ = r.var();
  fires_ = r.var();
  noops_ = r.var();
  omissive_fires_ = r.var();
  extras_.clear();
  const std::size_t nx = r.var();
  for (std::size_t i = 0; i < nx; ++i) {
    std::string key = r.str();
    extras_[std::move(key)].restore_state(r);
  }
}

}  // namespace ppfs::exp

#include "exp/report.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace ppfs::exp {

namespace {

[[nodiscard]] std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // specs never carry control chars
    out.push_back(c);
  }
  return out;
}

[[nodiscard]] std::string fmt_num(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

// The union of extras keys across rows, in sorted order — the dynamic
// column set for table/CSV output.
[[nodiscard]] std::vector<std::string> extras_keys(
    const std::vector<ReportRow>& rows) {
  std::set<std::string> keys;
  for (const ReportRow& row : rows)
    for (const auto& [key, stat] : row.aggregate.extras()) keys.insert(key);
  return {keys.begin(), keys.end()};
}

void write_summary_json(std::ostream& os, const char* key,
                        const StreamStat& s) {
  os << '"' << key << "\": ";
  if (s.count() == 0) {
    os << "null";
    return;
  }
  os << "{ \"count\": " << s.count() << ", \"mean\": " << fmt_num(s.mean())
     << ", \"stddev\": " << fmt_num(s.stddev())
     << ", \"min\": " << fmt_num(s.min()) << ", \"max\": " << fmt_num(s.max())
     << " }";
}

}  // namespace

void Report::add(ScenarioSpec spec, AggregateStats aggregate,
                 std::vector<ReplicaResult> replicas) {
  rows_.push_back(
      {std::move(spec), std::move(aggregate), std::move(replicas)});
}

void Report::extend(Report other) {
  for (ReportRow& row : other.rows_) rows_.push_back(std::move(row));
}

bool Report::any_failed() const noexcept {
  return std::any_of(rows_.begin(), rows_.end(), [](const ReportRow& r) {
    return r.aggregate.failed() > 0;
  });
}

bool Report::all_converged() const noexcept {
  return std::all_of(rows_.begin(), rows_.end(), [](const ReportRow& r) {
    return r.aggregate.converged() == r.aggregate.completed();
  });
}

void Report::print_table(std::ostream& os) const {
  const std::vector<std::string> extra_cols = extras_keys(rows_);
  std::vector<std::string> header = {"workload", "n",     "engine", "model",
                                     "adv",      "sim",   "trials", "conv",
                                     "int mean", "p50",   "p90",    "p99",
                                     "omissions"};
  for (const std::string& key : extra_cols) header.push_back(key);
  TextTable t(std::move(header));
  for (const ReportRow& row : rows_) {
    const AggregateStats& a = row.aggregate;
    std::vector<std::string> cells = {
        row.spec.workload,
        std::to_string(row.spec.n),
        row.spec.engine,
        row.spec.model ? model_name(*row.spec.model) : "default",
        row.spec.adversary,
        row.spec.sim.empty() ? "-" : row.spec.sim,
        std::to_string(a.trials()) +
            (a.failed() > 0 ? " (" + std::to_string(a.failed()) + " failed)"
                            : ""),
        // Fixed-step scenarios have no probe; a convergence fraction would
        // just read 0.
        row.spec.fixed_steps > 0
            ? "-"
            : std::to_string(a.converged()) + "/" + std::to_string(a.completed()),
        fmt_double(a.interactions().mean(), 0),
        std::to_string(a.interactions_quantile(0.50)),
        std::to_string(a.interactions_quantile(0.90)),
        std::to_string(a.interactions_quantile(0.99)),
        std::to_string(a.omissions()),
    };
    for (const std::string& key : extra_cols) {
      const auto it = a.extras().find(key);
      cells.push_back(it == a.extras().end() ? "-"
                                             : fmt_double(it->second.mean(), 2));
    }
    t.add_row(std::move(cells));
  }
  t.print(os);
}

void Report::write_json(std::ostream& os) const {
  os << "{ \"points\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const ReportRow& row = rows_[i];
    const AggregateStats& a = row.aggregate;
    os << "  { \"spec\": \"" << json_escape(row.spec.to_string()) << "\",\n"
       << "    \"workload\": \"" << json_escape(row.spec.workload)
       << "\", \"n\": " << row.spec.n << ", \"engine\": \""
       << json_escape(row.spec.engine) << "\", \"model\": \""
       << (row.spec.model ? model_name(*row.spec.model) : "default")
       << "\", \"adversary\": \"" << json_escape(row.spec.adversary)
       << "\", \"sim\": \"" << json_escape(row.spec.sim) << "\",\n"
       << "    \"trials\": " << a.trials() << ", \"completed\": "
       << a.completed() << ", \"converged\": " << a.converged()
       << ", \"failed\": " << a.failed()
       << ", \"convergence_rate\": " << fmt_num(a.convergence_rate()) << ",\n"
       << "    \"interactions\": { \"mean\": "
       << fmt_num(a.interactions().mean())
       << ", \"stddev\": " << fmt_num(a.interactions().stddev())
       << ", \"min\": " << fmt_num(a.interactions().min())
       << ", \"max\": " << fmt_num(a.interactions().max())
       << ", \"p50\": " << a.interactions_quantile(0.50)
       << ", \"p90\": " << a.interactions_quantile(0.90)
       << ", \"p99\": " << a.interactions_quantile(0.99) << " },\n    ";
    write_summary_json(os, "convergence_step", a.convergence_steps());
    os << ",\n    \"omissions\": " << a.omissions()
       << ", \"fires\": " << a.fires() << ", \"noops\": " << a.noops()
       << ", \"omissive_fires\": " << a.omissive_fires();
    os << ",\n    \"extras\": {";
    bool first = true;
    for (const auto& [key, stat] : a.extras()) {
      if (!first) os << ",";
      first = false;
      os << ' ';
      write_summary_json(os, key.c_str(), stat);
    }
    os << (first ? "}" : " }");
    os << " }" << (i + 1 < rows_.size() ? ",\n" : "\n");
  }
  os << "] }\n";
}

void Report::write_csv(std::ostream& os) const {
  const std::vector<std::string> extra_cols = extras_keys(rows_);
  os << "spec,workload,n,engine,model,adversary,sim,trials,completed,"
        "converged,failed,convergence_rate,int_mean,int_min,int_max,int_p50,"
        "int_p90,int_p99,conv_step_mean,omissions,fires,noops,omissive_fires";
  for (const std::string& key : extra_cols) os << ',' << key << "_mean";
  os << '\n';
  for (const ReportRow& row : rows_) {
    const AggregateStats& a = row.aggregate;
    os << '"' << row.spec.to_string() << '"' << ',' << row.spec.workload << ','
       << row.spec.n << ',' << row.spec.engine << ','
       << (row.spec.model ? model_name(*row.spec.model) : "default") << ','
       << row.spec.adversary << ',' << (row.spec.sim.empty() ? "-" : row.spec.sim)
       << ',' << a.trials() << ',' << a.completed() << ',' << a.converged()
       << ',' << a.failed() << ',' << fmt_num(a.convergence_rate()) << ','
       << fmt_num(a.interactions().mean()) << ','
       << fmt_num(a.interactions().min()) << ','
       << fmt_num(a.interactions().max()) << ','
       << a.interactions_quantile(0.50) << ',' << a.interactions_quantile(0.90)
       << ',' << a.interactions_quantile(0.99) << ','
       << (a.convergence_steps().count() > 0
               ? fmt_num(a.convergence_steps().mean())
               : std::string())
       << ',' << a.omissions() << ',' << a.fires() << ',' << a.noops() << ','
       << a.omissive_fires();
    for (const std::string& key : extra_cols) {
      const auto it = a.extras().find(key);
      os << ',';
      if (it != a.extras().end()) os << fmt_num(it->second.mean());
    }
    os << '\n';
  }
}

void Report::write(std::ostream& os, const std::string& format) const {
  if (format == "table") print_table(os);
  else if (format == "json") write_json(os);
  else if (format == "csv") write_csv(os);
  else
    throw std::invalid_argument("unknown report format '" + format +
                                "' (want table, json or csv)");
}

std::string Report::fingerprint() const {
  std::ostringstream out;
  for (const ReportRow& row : rows_)
    out << row.spec.to_string() << " => " << row.aggregate.fingerprint()
        << '\n';
  return out.str();
}

}  // namespace ppfs::exp

// The one results writer for scenario sweeps: every consumer — ppfs_cli
// --sweep, the paper-table bench harnesses, the CI smoke job — renders the
// same rows through here instead of hand-rolling its own table printing.
//
// Three formats over identical content:
//   * print_table: aligned text (util/table.hpp) with the distributional
//     columns plus one mean column per extras key present in any row;
//   * write_json:  {"points": [{...}]} — spec fields, convergence rate,
//     interaction mean/min/max/p50/p90/p99, omission totals, extras
//     summaries (schema documented in README);
//   * write_csv:   one flat row per point; the extras key union becomes
//     <key>_mean columns, empty where a row lacks the key.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/scenario.hpp"

namespace ppfs::exp {

struct ReportRow {
  ScenarioSpec spec;
  AggregateStats aggregate;
  // Per-replica results in trial order (kept for determinism tests and
  // callers that need raw outcomes; writers only use the aggregate).
  std::vector<ReplicaResult> replicas;
};

class Report {
 public:
  void add(ScenarioSpec spec, AggregateStats aggregate,
           std::vector<ReplicaResult> replicas = {});
  // Append another report's rows (benches stitch per-axis sub-sweeps).
  void extend(Report other);

  [[nodiscard]] const std::vector<ReportRow>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::vector<ReportRow>& rows_mutable() noexcept {
    return rows_;
  }

  // Any replica failed (threw / cancelled) anywhere in the sweep?
  [[nodiscard]] bool any_failed() const noexcept;
  // Every completed replica of every point converged?
  [[nodiscard]] bool all_converged() const noexcept;

  void print_table(std::ostream& os) const;
  void write_json(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
  // format: "table" | "json" | "csv".
  void write(std::ostream& os, const std::string& format) const;

  // Concatenated per-row fingerprints — the byte-stable digest the
  // determinism tests compare across thread counts.
  [[nodiscard]] std::string fingerprint() const;

 private:
  std::vector<ReportRow> rows_;
};

}  // namespace ppfs::exp

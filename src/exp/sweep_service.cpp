#include "exp/sweep_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace ppfs::exp {

namespace {

// File magics: 8 raw bytes so `xxd file | head -1` identifies a partial or
// checkpoint at a glance, followed by a format version varint.
constexpr std::string_view kPartialMagic = "PPFSPAR1";
constexpr std::string_view kCheckpointMagic = "PPFSCKP1";
constexpr std::uint64_t kFormatVersion = 1;

void save_provenance(bin::Writer& w, const SweepProvenance& p) {
  w.str(p.grid);
  w.var(p.trials);
  w.u64(p.seed);
  w.var(p.metrics_every);
  w.var(p.traj_every);
  w.var(p.shard_index);
  w.var(p.shard_count);
}

SweepProvenance load_provenance(bin::Reader& r) {
  SweepProvenance p;
  p.grid = r.str();
  p.trials = r.var();
  p.seed = r.u64();
  p.metrics_every = r.var();
  p.traj_every = r.var();
  p.shard_index = r.var();
  p.shard_count = r.var();
  if (p.shard_count == 0 || p.shard_index >= p.shard_count)
    throw std::runtime_error("sweep file: invalid shard index " +
                             std::to_string(p.shard_index) + "/" +
                             std::to_string(p.shard_count));
  return p;
}

void check_magic(bin::Reader& r, std::string_view magic, const char* what) {
  r.need(magic.size());
  for (const char c : magic)
    if (static_cast<char>(r.u8()) != c)
      throw std::runtime_error(std::string(what) + ": bad magic (not a " +
                               std::string(magic) + " file)");
  const std::uint64_t version = r.var();
  if (version != kFormatVersion)
    throw std::runtime_error(std::string(what) + ": unsupported version " +
                             std::to_string(version));
}

void save_snapshot(bin::Writer& w, const ReplicaSnapshot& s) {
  w.str(s.engine);
  w.u64(s.rng.seed);
  for (const std::uint64_t word : s.rng.state) w.u64(word);
  w.u64(s.rng.draws);
  w.var(s.harness_steps);
  w.var(s.harness_consecutive);
}

ReplicaSnapshot load_snapshot(bin::Reader& r) {
  ReplicaSnapshot s;
  s.engine = r.str();
  s.rng.seed = r.u64();
  for (std::uint64_t& word : s.rng.state) word = r.u64();
  s.rng.draws = r.u64();
  s.harness_steps = r.var();
  s.harness_consecutive = r.var();
  return s;
}

// One shard's decoded partial: (point index, stored shard-local aggregate,
// (trial, result) list in stored order) per point that had owned jobs.
struct PartialPoint {
  std::size_t point = 0;
  AggregateStats aggregate;
  std::vector<std::pair<std::size_t, ReplicaResult>> replicas;
};

struct PartialImage {
  SweepProvenance prov;
  std::vector<PartialPoint> points;
};

PartialImage decode_partial(std::string_view image) {
  bin::Reader r(image);
  check_magic(r, kPartialMagic, "sweep partial");
  PartialImage out;
  out.prov = load_provenance(r);
  const std::uint64_t npoints = r.var();
  out.points.resize(npoints);
  for (PartialPoint& pp : out.points) {
    pp.point = r.var();
    pp.aggregate.restore_state(r);
    const std::uint64_t nrep = r.var();
    pp.replicas.resize(nrep);
    for (auto& [trial, res] : pp.replicas) {
      trial = r.var();
      res = load_replica_result(r);
    }
  }
  if (!r.done())
    throw std::runtime_error("sweep partial: trailing bytes after payload");
  return out;
}

std::size_t resolved_threads(std::size_t threads) {
  if (threads != 0) return threads;
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

bool SweepProvenance::compatible(const SweepProvenance& o) const {
  return grid == o.grid && trials == o.trials && seed == o.seed &&
         metrics_every == o.metrics_every && traj_every == o.traj_every &&
         shard_count == o.shard_count;
}

std::vector<ScenarioSpec> SweepProvenance::expand_points() const {
  ScenarioGrid g = parse_grid(grid);
  // The stored values are post-override (the CLI applies --trials/--seed
  // AFTER parsing the grid text), so re-applying reproduces the original
  // sweep whether the value came from the grid or a flag.
  g.trials = trials;
  g.seed = seed;
  g.metrics_every = metrics_every;
  g.traj_every = traj_every;
  return g.expand();
}

std::vector<ReplicaJob> sweep_jobs(const std::vector<ScenarioSpec>& points) {
  std::vector<ReplicaJob> jobs;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const std::size_t trials = std::max<std::size_t>(1, points[p].trials);
    for (std::size_t t = 0; t < trials; ++t) jobs.push_back({p, t});
  }
  return jobs;
}

std::vector<ReplicaJob> shard_jobs(const std::vector<ReplicaJob>& jobs,
                                   std::size_t index, std::size_t count) {
  if (count == 0 || index >= count)
    throw std::invalid_argument("shard_jobs: index " + std::to_string(index) +
                                " out of range for " + std::to_string(count) +
                                " shards");
  std::vector<ReplicaJob> owned;
  for (std::size_t g = index; g < jobs.size(); g += count)
    owned.push_back(jobs[g]);
  return owned;
}

void save_replica_result(bin::Writer& w, const ReplicaResult& r) {
  w.var(r.run.steps);
  w.u8(r.run.converged ? 1 : 0);
  w.var(r.run.omissions);
  w.var(r.convergence_step);
  w.var(r.fires);
  w.var(r.noops);
  w.var(r.omissive_fires);
  w.var(r.extras.size());
  for (const auto& [key, value] : r.extras) {
    w.str(key);
    w.f64(value);
  }
  w.str(r.flight);
  w.str(r.traj);
  w.str(r.error);
}

ReplicaResult load_replica_result(bin::Reader& r) {
  ReplicaResult out;
  out.run.steps = r.var();
  out.run.converged = r.u8() != 0;
  out.run.omissions = r.var();
  out.convergence_step = r.var();
  out.fires = r.var();
  out.noops = r.var();
  out.omissive_fires = r.var();
  const std::uint64_t nextras = r.var();
  for (std::uint64_t i = 0; i < nextras; ++i) {
    std::string key = r.str();
    out.extras[std::move(key)] = r.f64();
  }
  out.flight = r.str();
  out.traj = r.str();
  out.error = r.str();
  return out;
}

std::string encode_partial(const SweepProvenance& prov,
                           const std::vector<ScenarioSpec>& points,
                           const std::vector<std::vector<ReplicaResult>>& results,
                           const std::vector<ReplicaJob>& owned) {
  // Group the owned jobs by point. The owned list is point-major (it is a
  // subsequence of the global job list), so one forward pass suffices.
  std::vector<PartialPoint> blocks;
  for (const ReplicaJob& job : owned) {
    if (job.point >= points.size() || job.trial >= results[job.point].size())
      throw std::invalid_argument("encode_partial: job outside results matrix");
    if (blocks.empty() || blocks.back().point != job.point) {
      blocks.push_back({});
      blocks.back().point = job.point;
    }
    const ReplicaResult& res = results[job.point][job.trial];
    blocks.back().aggregate.add(res);
    blocks.back().replicas.emplace_back(job.trial, res);
  }

  bin::Writer w;
  w.raw(kPartialMagic);
  w.var(kFormatVersion);
  save_provenance(w, prov);
  w.var(blocks.size());
  for (const PartialPoint& pp : blocks) {
    w.var(pp.point);
    pp.aggregate.save_state(w);
    w.var(pp.replicas.size());
    for (const auto& [trial, res] : pp.replicas) {
      w.var(trial);
      save_replica_result(w, res);
    }
  }
  return w.data();
}

SweepProvenance partial_provenance(std::string_view image) {
  bin::Reader r(image);
  check_magic(r, kPartialMagic, "sweep partial");
  return load_provenance(r);
}

Report merge_partials(const std::vector<std::string>& images) {
  if (images.empty())
    throw std::invalid_argument("merge_partials: no partials given");

  std::vector<PartialImage> partials;
  partials.reserve(images.size());
  for (const std::string& image : images)
    partials.push_back(decode_partial(image));

  // Provenance agreement + a disjoint complete shard cover: exactly the
  // shard_count distinct indices 0..k-1, each appearing once.
  const SweepProvenance& ref = partials.front().prov;
  if (partials.size() != ref.shard_count)
    throw std::runtime_error(
        "merge_partials: got " + std::to_string(partials.size()) +
        " partials for a " + std::to_string(ref.shard_count) + "-shard sweep");
  std::vector<char> shard_seen(ref.shard_count, 0);
  for (const PartialImage& pi : partials) {
    if (!pi.prov.compatible(ref))
      throw std::runtime_error(
          "merge_partials: partials come from different sweeps (provenance "
          "mismatch)");
    if (shard_seen[pi.prov.shard_index])
      throw std::runtime_error("merge_partials: duplicate shard " +
                               std::to_string(pi.prov.shard_index));
    shard_seen[pi.prov.shard_index] = 1;
  }

  std::vector<ScenarioSpec> points = ref.expand_points();
  std::vector<std::vector<ReplicaResult>> results(points.size());
  std::vector<std::vector<char>> filled(points.size());
  std::size_t total = 0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const std::size_t trials = std::max<std::size_t>(1, points[p].trials);
    results[p].resize(trials);
    filled[p].assign(trials, 0);
    total += trials;
  }

  std::size_t placed = 0;
  for (const PartialImage& pi : partials) {
    for (const PartialPoint& pp : pi.points) {
      if (pp.point >= points.size())
        throw std::runtime_error("merge_partials: point index out of range");
      // Integrity cross-check: the stored shard-local aggregate must equal
      // a refold of the shard's own replicas — catches any codec drift or
      // torn write that slipped past the length checks.
      AggregateStats refold;
      for (const auto& [trial, res] : pp.replicas) {
        if (trial >= results[pp.point].size())
          throw std::runtime_error("merge_partials: trial index out of range");
        if (filled[pp.point][trial])
          throw std::runtime_error(
              "merge_partials: shards overlap at point " +
              std::to_string(pp.point) + " trial " + std::to_string(trial));
        refold.add(res);
        results[pp.point][trial] = res;
        filled[pp.point][trial] = 1;
        ++placed;
      }
      if (!(refold == pp.aggregate))
        throw std::runtime_error(
            "merge_partials: stored aggregate does not match its replicas "
            "(corrupt partial, point " + std::to_string(pp.point) + ")");
    }
  }
  if (placed != total)
    throw std::runtime_error(
        "merge_partials: incomplete cover — " + std::to_string(placed) +
        " of " + std::to_string(total) + " replicas present");

  return fold_report(points, std::move(results));
}

std::string encode_checkpoint(const SweepCheckpoint& ck) {
  bin::Writer w;
  w.raw(kCheckpointMagic);
  w.var(kFormatVersion);
  save_provenance(w, ck.prov);
  w.var(ck.completed.size());
  for (const auto& [job, res] : ck.completed) {
    w.var(job);
    save_replica_result(w, res);
  }
  w.u8(ck.has_inflight ? 1 : 0);
  if (ck.has_inflight) {
    w.var(ck.inflight_job);
    save_snapshot(w, ck.inflight);
  }
  return w.data();
}

SweepCheckpoint decode_checkpoint(std::string_view image) {
  bin::Reader r(image);
  check_magic(r, kCheckpointMagic, "sweep checkpoint");
  SweepCheckpoint ck;
  ck.prov = load_provenance(r);
  const std::uint64_t ncompleted = r.var();
  ck.completed.resize(ncompleted);
  for (auto& [job, res] : ck.completed) {
    job = r.var();
    res = load_replica_result(r);
  }
  ck.has_inflight = r.u8() != 0;
  if (ck.has_inflight) {
    ck.inflight_job = r.var();
    ck.inflight = load_snapshot(r);
  }
  if (!r.done())
    throw std::runtime_error("sweep checkpoint: trailing bytes after payload");
  return ck;
}

SweepRun run_sweep_shard(const SweepProvenance& prov,
                         const SweepServiceOptions& opt) {
  SweepRun run;
  run.points = prov.expand_points();
  const std::vector<ReplicaJob> all = sweep_jobs(run.points);

  run.results.resize(run.points.size());
  for (std::size_t p = 0; p < run.points.size(); ++p)
    run.results[p].resize(std::max<std::size_t>(1, run.points[p].trials));

  // This shard's slice, with each job's global index alongside (the
  // checkpoint format records global indices so a resumed process can
  // validate ownership without re-deriving the round-robin).
  std::vector<std::size_t> owned_global;
  for (std::size_t g = prov.shard_index; g < all.size();
       g += prov.shard_count) {
    owned_global.push_back(g);
    run.owned.push_back(all[g]);
  }

  // The live checkpoint this drain maintains; rewritten atomically after
  // every completed replica (and at every in-flight capture).
  SweepCheckpoint ck;
  ck.prov = prov;
  std::vector<char> done(all.size(), 0);

  if (opt.resume != nullptr) {
    if (!opt.resume->prov.compatible(prov) ||
        opt.resume->prov.shard_index != prov.shard_index)
      throw std::runtime_error(
          "sweep resume: checkpoint provenance does not match this sweep");
    for (const auto& [job, res] : opt.resume->completed) {
      if (job >= all.size() || job % prov.shard_count != prov.shard_index)
        throw std::runtime_error(
            "sweep resume: checkpoint lists job " + std::to_string(job) +
            " outside this shard");
      if (done[job])
        throw std::runtime_error("sweep resume: duplicate completed job " +
                                 std::to_string(job));
      done[job] = 1;
      run.results[all[job].point][all[job].trial] = res;
      ck.completed.emplace_back(job, res);
    }
  }

  std::vector<std::size_t> pending;
  for (const std::size_t g : owned_global)
    if (!done[g]) pending.push_back(g);

  const std::size_t total = owned_global.size();
  std::size_t finished = ck.completed.size();

  // strict = throw on a failed write (the completion-time writes; losing
  // them silently would defeat the resume contract). The mid-replica
  // snapshot writes are best-effort: a transient failure there must not
  // surface as a thrown — hence "failed" — replica, and any persistent
  // failure still aborts loudly at the next completion write.
  const auto write_checkpoint = [&](bool strict) {
    if (opt.checkpoint_file.empty()) return;
    if (!bin::atomic_write_file(opt.checkpoint_file, encode_checkpoint(ck)) &&
        strict)
      throw std::runtime_error("sweep checkpoint: cannot write " +
                               opt.checkpoint_file);
  };

  // A finished replica invalidates any in-flight snapshot (it was for the
  // job that just finished, or stale from a resume).
  const auto record_done = [&](std::size_t job, const ReplicaResult& res) {
    ck.completed.emplace_back(job, res);
    ck.has_inflight = false;
    ck.inflight = ReplicaSnapshot{};
    ++finished;
    write_checkpoint(/*strict=*/true);
    if (opt.on_replica)
      opt.on_replica(finished, total, run.points[all[job].point],
                     all[job].trial, res);
  };

  if (resolved_threads(opt.threads) > 1) {
    // Multi-threaded drain: Tier A checkpoints only. A resumed in-flight
    // snapshot is discarded and its job re-run from scratch — a replica is
    // a pure function of (spec, trial), so the result is identical either
    // way; only the wall-clock of one replica is lost.
    std::vector<ReplicaJob> jobs;
    jobs.reserve(pending.size());
    for (const std::size_t g : pending) jobs.push_back(all[g]);

    // on_job reports (point, trial); map back to the global index.
    std::vector<std::size_t> offset(run.points.size(), 0);
    for (std::size_t p = 1; p < run.points.size(); ++p)
      offset[p] = offset[p - 1] + run.results[p - 1].size();

    RunnerOptions ro;
    ro.threads = opt.threads;
    ro.on_job = [&](std::size_t point, std::size_t trial,
                    const ReplicaResult& res) {
      record_done(offset[point] + trial, res);
    };
    std::vector<std::vector<ReplicaResult>> fresh =
        ReplicaRunner(ro).run_jobs(run.points, jobs);
    for (const ReplicaJob& job : jobs)
      run.results[job.point][job.trial] =
          std::move(fresh[job.point][job.trial]);
    return run;
  }

  // Single-threaded drain: jobs run inline in owned order, so an embedded
  // in-flight snapshot (Tier B) can be captured at probe-slice boundaries
  // and resumed mid-replica.
  const bool capture = !opt.checkpoint_file.empty() && opt.snapshot_every > 0;
  for (const std::size_t g : pending) {
    const ReplicaJob job = all[g];
    const ScenarioSpec& spec = run.points[job.point];
    ReplicaResult& slot = run.results[job.point][job.trial];

    const ReplicaSnapshot* resume_snap = nullptr;
    if (opt.resume != nullptr && opt.resume->has_inflight &&
        opt.resume->inflight_job == g)
      resume_snap = &opt.resume->inflight;

    SnapshotHook hook;
    if (capture) {
      hook = [&, g](const ReplicaSnapshot& snap) {
        ck.has_inflight = true;
        ck.inflight_job = g;
        ck.inflight = snap;
        write_checkpoint(/*strict=*/false);
      };
    }

    try {
      slot = run_replica_resumable(spec, job.trial, resume_snap, hook,
                                   capture ? opt.snapshot_every : 0);
    } catch (const std::exception& e) {
      slot = ReplicaResult{};
      slot.error = e.what();
    } catch (...) {
      slot = ReplicaResult{};
      slot.error = "unknown error";
    }
    record_done(g, slot);
  }
  return run;
}

Report fold_report(const std::vector<ScenarioSpec>& points,
                   std::vector<std::vector<ReplicaResult>> results) {
  Report report;
  for (std::size_t p = 0; p < points.size(); ++p) {
    AggregateStats agg;
    for (const ReplicaResult& r : results[p]) agg.add(r);
    report.add(points[p], std::move(agg), std::move(results[p]));
  }
  return report;
}

std::vector<TrajectoryRecord> trajectory_records(const SweepRun& run,
                                                 std::size_t traj_every) {
  std::vector<TrajectoryRecord> records;
  for (const ReplicaJob& job : run.owned) {
    const ReplicaResult& res = run.results[job.point][job.trial];
    if (res.traj.empty()) continue;
    TrajectoryRecord rec;
    rec.point = job.point;
    rec.point_key = run.points[job.point].point_key();
    rec.trial = job.trial;
    rec.every = traj_every;
    rec.blob = res.traj;
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace ppfs::exp

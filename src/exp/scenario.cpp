#include "exp/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "engine/batch/dispatch.hpp"
#include "engine/workload_runner.hpp"
#include "sched/adversary.hpp"
#include "util/trajectory.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/sim_rules.hpp"
#include "sim/skno.hpp"
#include "verify/matching.hpp"

namespace ppfs::exp {

namespace {

[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

[[nodiscard]] Model parse_model_name(const std::string& s) {
  for (const Model m : kAllModels)
    if (model_name(m) == s) return m;
  throw std::invalid_argument("unknown model '" + s + "'");
}

// Sizes accept scientific notation ("1e6") as well as plain integers.
[[nodiscard]] std::size_t parse_size(const std::string& s) {
  try {
    std::size_t end = 0;
    const double v = std::stod(s, &end);
    if (end != s.size() || v < 0 || v != std::floor(v) || v > 1e18)
      throw std::invalid_argument(s);
    return static_cast<std::size_t>(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad size '" + s + "' (want 1000 or 1e3)");
  }
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& key,
                                      const std::string& s) {
  // Digits only up front: stoull would silently wrap "-1" to 2^64 - 1
  // (same pitfall omission_process.cpp guards in its burst parsing).
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
    throw std::invalid_argument("bad value '" + s + "' for " + key);
  try {
    std::size_t end = 0;
    const unsigned long long v = std::stoull(s, &end);
    if (end != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad value '" + s + "' for " + key);
  }
}

[[nodiscard]] bool known_key(const std::string& key) {
  static const char* const kKeys[] = {"n",     "model",     "engine",
                                      "adv",   "sim",       "trials",
                                      "seed",  "steps",     "maxsteps",
                                      "checkevery", "stable", "probe",
                                      "verify"};
  return std::find_if(std::begin(kKeys), std::end(kKeys), [&](const char* k) {
           return key == k;
         }) != std::end(kKeys);
}

void fill_from_stats(ReplicaResult& out, const RunStats& stats) {
  out.convergence_step = stats.convergence_step();
  out.fires = stats.total_fires();
  out.noops = stats.noops();
  out.omissive_fires = stats.omissive_fires();
}

// Simulator-kind-specific metrics harvested after a native (step-wise
// facade) simulator run: the columns the paper-table benches report.
void harvest_sim_extras(const Simulator& sim, ReplicaResult& out) {
  out.extras["sim_updates"] = static_cast<double>(sim.simulated_updates());
  if (const auto* skno = dynamic_cast<const SknoSimulator*>(&sim)) {
    std::size_t max_bits = 0;
    for (AgentId a = 0; a < skno->num_agents(); ++a)
      max_bits = std::max(max_bits, skno->memory_bits(a));
    out.extras["max_bits"] = static_cast<double>(max_bits);
    out.extras["max_queue"] = static_cast<double>(skno->stats().max_queue);
  } else if (const auto* naming = dynamic_cast<const NamingSimulator*>(&sim)) {
    out.extras["id_increments"] =
        static_cast<double>(naming->naming_stats().id_increments);
    out.extras["rollbacks"] =
        static_cast<double>(naming->sid_stats().rollbacks);
  } else if (const auto* sid = dynamic_cast<const SidSimulator*>(&sim)) {
    out.extras["rollbacks"] = static_cast<double>(sid->stats().rollbacks);
  }
}

// Native step-wise simulator replica: the facade path that carries
// SimEvents, so it is the only place matching verification can run.
[[nodiscard]] ReplicaResult run_native_sim_replica(const ScenarioSpec& spec,
                                                   const Workload& w, Rng rng) {
  const Model model = resolve_model(spec);
  const SimSpec sim_spec = parse_sim_spec(spec.sim);
  auto sim = make_spec_simulator(sim_spec, model, w.protocol, w.initial);
  sim->record_events(spec.verify_matching);

  const AdversaryParams adv = parse_adversary_spec(spec.adversary);
  std::unique_ptr<Scheduler> sched;
  if (adv.rate > 0.0) {
    sched = std::make_unique<OmissionAdversary>(
        std::make_unique<UniformScheduler>(spec.n), spec.n, adv);
  } else {
    sched = std::make_unique<UniformScheduler>(spec.n);
  }

  ReplicaResult out;
  const RunOptions opt = resolve_run_options(spec);
  if (spec.fixed_steps > 0) {
    out.run = run_steps(*sim, *sched, rng, spec.fixed_steps);
  } else if (spec.probe == "activation") {
    const auto* naming = dynamic_cast<const NamingSimulator*>(sim.get());
    if (naming == nullptr)
      throw std::invalid_argument(
          "probe=activation needs sim=naming on the native engine");
    out.run = run_until(
        *sim, *sched, rng,
        [](const Simulator& s) {
          return static_cast<const NamingSimulator&>(s).all_activated();
        },
        opt);
  } else {
    auto counts_probe = workload_counts_probe(w);
    out.run = run_until(
        *sim, *sched, rng,
        [&](const Simulator& s) {
          return counts_probe(s.projected_counts(), *w.protocol);
        },
        opt);
  }

  harvest_sim_extras(*sim, out);
  if (spec.verify_matching) {
    const MatchingReport rep =
        verify_simulation(*sim, spec.max_unmatched_per_n * spec.n);
    out.extras["sim_pairs"] = static_cast<double>(rep.pairs);
    out.extras["unmatched"] = static_cast<double>(rep.unmatched);
    out.extras["matching_ok"] = rep.ok ? 1.0 : 0.0;
    out.extras["overhead"] =
        rep.pairs > 0
            ? static_cast<double>(out.run.steps) / static_cast<double>(rep.pairs)
            : 0.0;
  }
  return out;
}

// Engine-backed replica: direct runs (two-way or one-way, either engine)
// and count-space simulator runs. `workload` is the resolved two-way
// workload, null exactly for one-way direct runs (which resolve the
// one-way registry here). `resume`/`on_snapshot`/`snapshot_every` carry
// the sweep service's in-flight checkpoint protocol (see scenario.hpp);
// run_replica passes nulls and zero.
[[nodiscard]] ReplicaResult run_engine_replica(
    const ScenarioSpec& spec, const Workload* workload, Rng rng,
    RunStats* stats_out, const ReplicaSnapshot* resume,
    const SnapshotHook& on_snapshot, std::size_t snapshot_every) {
  const Model model = resolve_model(spec);
  const AdversaryParams adv = parse_adversary_spec(spec.adversary);

  std::unique_ptr<Engine> engine;
  CountsProbe probe;
  if (!spec.sim.empty()) {
    SimEngineConfig config;
    config.spec = parse_sim_spec(spec.sim);
    config.model = spec.model;
    if (adv.rate > 0.0) config.adversary = adv;
    engine = make_sim_engine(spec.engine, workload->protocol,
                             workload->initial, config);
    probe = workload_counts_probe(*workload);
  } else if (workload == nullptr) {
    EngineConfig config;
    config.model = model;
    if (adv.rate > 0.0) config.adversary = adv;
    const OneWayWorkload w =
        find_one_way_workload(spec.workload, spec.n, model);
    engine = make_engine(spec.engine, w.protocol, w.initial, config);
    auto conv = w.converged;
    const int expect = w.expected_output;
    probe = [conv, expect](const std::vector<std::size_t>& counts,
                           const Protocol& p) {
      if (conv) return conv(counts);
      return counts_consensus_output(counts, p) == expect;
    };
  } else {
    EngineConfig config;
    config.model = model;
    if (adv.rate > 0.0) config.adversary = adv;
    engine = make_engine(spec.engine, workload->protocol, workload->initial,
                         config);
    probe = workload_counts_probe(*workload);
  }

  UniformScheduler sched(spec.n);
  ReplicaResult out;
  const RunOptions opt = resolve_run_options(spec);
  std::optional<obs::FlightRecorder> recorder;
  if (spec.metrics_every > 0) {
    engine->enable_metrics();
    obs::FlightRecorderOptions fopt;
    fopt.every = spec.metrics_every;
    recorder.emplace(fopt);
  }
  obs::FlightRecorder* rec = recorder ? &*recorder : nullptr;

  // In-flight checkpoint eligibility: exactness-safe captures only (see
  // scenario.hpp). The windowed-telemetry and trajectory accumulators are
  // not part of the engine snapshot, so replicas that carry them restart
  // from scratch instead of resuming mid-run.
  const bool capture_safe = spec.fixed_steps == 0 && spec.metrics_every == 0 &&
                            spec.traj_every == 0 &&
                            engine->checkpoint_exact();
  if (resume != nullptr) {
    if (!capture_safe)
      throw std::invalid_argument(
          "run_replica_resumable: snapshot restore into a replica that is "
          "not exactness-safe (mismatched spec?)");
    bin::Reader state(resume->engine);
    engine->restore_state(state);
    if (!state.done())
      throw std::runtime_error(
          "run_replica_resumable: trailing bytes after engine state");
    rng.restore(resume->rng);
  }
  RunProgress progress;
  if (resume != nullptr) {
    progress.steps = resume->harness_steps;
    progress.consecutive = resume->harness_consecutive;
  }

  SliceHook hook;
  std::optional<TrajectoryEncoder> traj;
  std::uint64_t next_traj = 0;
  if (spec.traj_every > 0 && spec.fixed_steps == 0) {
    traj.emplace();
    std::vector<std::size_t> counts;
    engine->counts_into(counts);
    traj->append(0, counts);  // initial configuration, frame 0
    next_traj = spec.traj_every;
  }
  std::size_t last_capture = progress.steps;
  const bool capturing =
      capture_safe && on_snapshot != nullptr && snapshot_every > 0;
  if (capturing || traj) {
    hook = [&](Engine& e, const RunProgress& p) {
      if (traj && p.steps >= next_traj) {
        std::vector<std::size_t> counts;
        e.counts_into(counts);
        traj->append(p.steps, counts);
        next_traj = p.steps + spec.traj_every;
      }
      if (capturing && p.steps - last_capture >= snapshot_every) {
        last_capture = p.steps;
        bin::Writer w;
        e.save_state(w);
        ReplicaSnapshot snap;
        snap.engine = w.data();
        snap.rng = rng.snapshot();
        snap.harness_steps = p.steps;
        snap.harness_consecutive = p.consecutive;
        on_snapshot(snap);
      }
    };
  }

  if (spec.fixed_steps > 0) {
    out.run = run_engine_steps(*engine, sched, rng, spec.fixed_steps, rec);
  } else {
    out.run = run_engine_until(*engine, sched, rng, probe, opt, progress, hook,
                               rec);
  }
  if (traj) out.traj = traj->data();
  fill_from_stats(out, engine->stats());
  if (!spec.sim.empty())
    out.extras["live_states"] = static_cast<double>(engine->universe_live());
  if (recorder) {
    engine->sync_metrics();
    out.flight = recorder->to_jsonl();
    // Deterministic registry content only: counters and gauges aggregate
    // into "m.*" extras columns. Sampled timers are wall-clock estimates
    // and stay out — extras must be bit-identical across thread counts.
    for (const auto& [name, c] : engine->metrics()->counters())
      out.extras["m." + name] = static_cast<double>(c.value());
    for (const auto& [name, g] : engine->metrics()->gauges())
      out.extras["m." + name] = g.value();
  }
  if (stats_out != nullptr) *stats_out = engine->stats();
  return out;
}

}  // namespace

std::string ScenarioSpec::point_key() const {
  std::ostringstream out;
  out << workload << "@n=" << n << ":model="
      << (model ? model_name(*model) : std::string("default"))
      << ":adv=" << adversary << ":engine=" << engine;
  if (!sim.empty()) out << ":sim=" << sim;
  if (fixed_steps > 0) out << ":steps=" << fixed_steps;
  if (max_steps > 0) out << ":maxsteps=" << max_steps;
  if (check_every > 0) out << ":checkevery=" << check_every;
  if (stable_checks != 3) out << ":stable=" << stable_checks;
  if (probe != "workload") out << ":probe=" << probe;
  if (verify_matching) out << ":verify=1";
  return out.str();
}

std::string ScenarioSpec::to_string() const {
  std::ostringstream out;
  out << point_key() << ":trials=" << trials << ":seed=" << seed;
  return out.str();
}

std::uint64_t ScenarioSpec::point_seed() const {
  return seed ^ fnv1a64(point_key());
}

std::vector<ScenarioSpec> ScenarioGrid::expand() const {
  if (workloads.empty() || sizes.empty() || adversaries.empty() ||
      sims.empty() || engines.empty())
    throw std::invalid_argument("ScenarioGrid: every axis needs >= 1 value");
  const std::vector<std::string> model_axis =
      models.empty() ? std::vector<std::string>{""} : models;
  std::vector<ScenarioSpec> out;
  out.reserve(points());
  for (const std::string& w : workloads) {
    for (const std::size_t n : sizes) {
      for (const std::string& m : model_axis) {
        for (const std::string& a : adversaries) {
          for (const std::string& s : sims) {
            for (const std::string& e : engines) {
              ScenarioSpec spec;
              spec.workload = w;
              spec.n = n;
              if (!m.empty() && m != "default") spec.model = parse_model_name(m);
              spec.adversary = a.empty() ? "none" : a;
              spec.sim = s == "none" ? "" : s;
              spec.engine = e;
              spec.trials = trials;
              spec.seed = seed;
              spec.max_steps = max_steps;
              spec.check_every = check_every;
              spec.stable_checks = stable_checks;
              spec.fixed_steps = fixed_steps;
              spec.probe = probe;
              spec.verify_matching = verify_matching;
              spec.max_unmatched_per_n = max_unmatched_per_n;
              spec.metrics_every = metrics_every;
              spec.traj_every = traj_every;
              out.push_back(std::move(spec));
            }
          }
        }
      }
    }
  }
  return out;
}

ScenarioGrid parse_grid(const std::string& text) {
  if (text.empty()) throw std::invalid_argument("parse_grid: empty grid");
  ScenarioGrid g;

  const std::size_t at = text.find('@');
  const std::string head = text.substr(0, at);
  g.workloads = split(head, ',');
  for (const std::string& w : g.workloads)
    if (w.empty())
      throw std::invalid_argument("parse_grid: empty workload name in '" +
                                  head + "'");
  if (at == std::string::npos) return g;

  // Top-level ':' split with continuation: a segment that does not start a
  // known key re-joins the previous field (adversary and simulator specs
  // legitimately contain ':').
  std::vector<std::pair<std::string, std::string>> fields;
  for (const std::string& token : split(text.substr(at + 1), ':')) {
    const std::size_t eq = token.find('=');
    const std::string key = eq == std::string::npos ? "" : token.substr(0, eq);
    if (!key.empty() && known_key(key)) {
      fields.emplace_back(key, token.substr(eq + 1));
    } else if (!fields.empty()) {
      fields.back().second += ':' + token;
    } else {
      throw std::invalid_argument("parse_grid: expected key=value, got '" +
                                  token + "'");
    }
  }

  for (const auto& [key, value] : fields) {
    if (key == "n") {
      g.sizes.clear();
      for (const std::string& v : split(value, ','))
        g.sizes.push_back(parse_size(v));
    } else if (key == "model") {
      g.models = split(value, ',');
      for (const std::string& m : g.models)
        if (!m.empty() && m != "default") (void)parse_model_name(m);
    } else if (key == "engine") {
      g.engines = split(value, ',');
      for (const std::string& e : g.engines) {
        const auto& kinds = engine_kinds();
        if (std::find(kinds.begin(), kinds.end(), e) == kinds.end())
          throw std::invalid_argument("parse_grid: unknown engine '" + e +
                                      "' (want native, batch or auto)");
      }
    } else if (key == "adv") {
      g.adversaries = split(value, ',');
      for (const std::string& a : g.adversaries)
        (void)parse_adversary_spec(a.empty() ? "none" : a);
    } else if (key == "sim") {
      g.sims = split(value, ',');
      for (const std::string& s : g.sims)
        if (!s.empty() && s != "none") (void)parse_sim_spec(s);
    } else if (key == "trials") {
      g.trials = parse_u64(key, value);
      if (g.trials == 0)
        throw std::invalid_argument("parse_grid: trials must be >= 1");
    } else if (key == "seed") {
      g.seed = parse_u64(key, value);
    } else if (key == "steps") {
      g.fixed_steps = parse_u64(key, value);
    } else if (key == "maxsteps") {
      g.max_steps = parse_u64(key, value);
    } else if (key == "checkevery") {
      g.check_every = parse_u64(key, value);
    } else if (key == "stable") {
      g.stable_checks = parse_u64(key, value);
    } else if (key == "probe") {
      if (value != "workload" && value != "activation")
        throw std::invalid_argument("parse_grid: probe must be workload or "
                                    "activation, got '" + value + "'");
      g.probe = value;
    } else if (key == "verify") {
      if (value == "1" || value == "true") g.verify_matching = true;
      else if (value == "0" || value == "false") g.verify_matching = false;
      else
        throw std::invalid_argument("parse_grid: verify must be 0 or 1");
    }
  }
  return g;
}

Model resolve_model(const ScenarioSpec& spec) {
  if (spec.model) return *spec.model;
  if (!spec.sim.empty()) return default_sim_model(parse_sim_spec(spec.sim));
  return Model::TW;
}

RunOptions resolve_run_options(const ScenarioSpec& spec) {
  RunOptions opt;
  opt.stable_checks = std::max<std::size_t>(1, spec.stable_checks);
  const AdversaryParams adv = parse_adversary_spec(spec.adversary);
  const bool persistent_adversary =
      adv.rate > 0.0 && adv.kind == AdversaryKind::UO;
  // Probe cadence scales with the n^2-ish convergence times of the uniform
  // scheduler, clamped so small populations get fine-grained interaction
  // counts and million-agent runs don't probe needlessly often.
  const auto scaled = [&](std::size_t lo, std::size_t hi) {
    return std::clamp(spec.n * spec.n / 64, lo, hi);
  };
  if (spec.sim.empty()) {
    // The batch engine leaps over no-op runs, so give it an interaction
    // budget sized for n^2-scale convergence times; a UO adversary never
    // quiesces and costs O(1) per omission forever, so those runs get a
    // finite cap instead. engine=auto gets batch-class budgets: it either
    // resolves to batch (closed protocols) or can reach count space.
    if (spec.engine != "native") {
      opt.max_steps = persistent_adversary ? 1'000'000'000'000ULL
                                           : 1'000'000'000'000'000ULL;
      opt.check_every = scaled(4096, 1u << 22);
    } else {
      opt.max_steps = 100'000'000;
      opt.check_every = std::clamp<std::size_t>(spec.n, 64, 4096);
    }
  } else if (spec.engine != "native") {
    // Naive wrappers add no state (bare-protocol no-op oceans can be
    // leapt); the real simulators pay per fire on any engine.
    const bool naive = parse_sim_spec(spec.sim).kind == "naive";
    opt.max_steps = naive ? 20'000'000'000'000ULL : 1'000'000'000ULL;
    opt.check_every = scaled(4096, 1u << 20);
  } else {
    opt.max_steps = 20'000'000;
    opt.check_every = 64;
  }
  if (spec.max_steps > 0) opt.max_steps = spec.max_steps;
  if (spec.check_every > 0) opt.check_every = spec.check_every;
  return opt;
}

namespace {

[[nodiscard]] ReplicaResult run_replica_impl(
    const ScenarioSpec& spec, std::size_t trial, RunStats* stats_out,
    const ReplicaSnapshot* resume, const SnapshotHook& on_snapshot,
    std::size_t snapshot_every) {
  if (spec.n < 4)
    throw std::invalid_argument("scenario needs n >= 4 (got " +
                                std::to_string(spec.n) + ")");
  if (spec.probe != "workload" && spec.probe != "activation")
    throw std::invalid_argument("unknown probe '" + spec.probe + "'");
  Rng rng = Rng(spec.point_seed()).split(trial);
  if (stats_out != nullptr) stats_out->reset(0);
  // Resolve the two-way workload once; only one-way direct runs (no sim,
  // one-way model) resolve the one-way registry instead, inside
  // run_engine_replica.
  const bool one_way_direct =
      spec.sim.empty() && is_one_way(resolve_model(spec));
  if (one_way_direct && spec.custom)
    throw std::invalid_argument(
        "custom workloads are two-way; pick a two-way model");
  std::optional<Workload> workload;
  if (!one_way_direct)
    workload = spec.custom ? *spec.custom : find_workload(spec.workload, spec.n);
  if (!spec.sim.empty() && spec.engine == "native") {
    if (resume != nullptr)
      throw std::invalid_argument(
          "run_replica_resumable: native simulator replicas do not "
          "checkpoint");
    return run_native_sim_replica(spec, *workload, rng);
  }
  if (spec.probe == "activation")
    throw std::invalid_argument(
        "probe=activation needs engine=native with sim=naming");
  return run_engine_replica(spec, workload ? &*workload : nullptr, rng,
                            stats_out, resume, on_snapshot, snapshot_every);
}

}  // namespace

ReplicaResult run_replica(const ScenarioSpec& spec, std::size_t trial,
                          RunStats* stats_out) {
  return run_replica_impl(spec, trial, stats_out, nullptr, nullptr, 0);
}

ReplicaResult run_replica_resumable(const ScenarioSpec& spec,
                                    std::size_t trial,
                                    const ReplicaSnapshot* resume,
                                    const SnapshotHook& on_snapshot,
                                    std::size_t snapshot_every) {
  return run_replica_impl(spec, trial, nullptr, resume, on_snapshot,
                          snapshot_every);
}

}  // namespace ppfs::exp

// Fastest Transition Time (Definitions 6–7 of the paper): the minimum
// number of non-omissive interactions a given simulator needs to carry a
// two-agent system through one full simulated two-way transition — its
// "maximum speed", and per Lemma 1 exactly the number of omissions that
// suffices to defeat it.
//
// Computed by breadth-first search over interaction schedules on the
// two-agent system, using Simulator::clone to branch deterministically.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"

namespace ppfs {

// Builds a fresh simulator over the given initial simulated states.
using SimFactory =
    std::function<std::unique_ptr<Simulator>(std::vector<State> initial)>;

struct FttResult {
  std::size_t ftt = 0;               // t: minimal transition time
  std::vector<Interaction> run;      // a witness run I achieving it
};

// Searches runs up to max_depth interactions. The transition-time target
// is: projection == (delta(q0,q1)[0], delta(q0,q1)[1]) where (q0, q1) is
// the simulator's initial projection. Returns nullopt if not reachable
// within the depth bound (or if the target equals the initial projection,
// in which case FTT would be 0 and the construction degenerate).
[[nodiscard]] std::optional<FttResult> find_ftt(const SimFactory& factory, State q0,
                                                State q1, std::size_t max_depth);

}  // namespace ppfs

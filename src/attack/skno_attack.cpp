#include "attack/skno_attack.hpp"

#include <stdexcept>

#include "protocols/pairing.hpp"

namespace ppfs {

SknoAttackPlan build_skno_attack(std::size_t o) {
  if (o < 1)
    throw std::invalid_argument(
        "build_skno_attack: o >= 1 (with o = 0 there are no jokers to cheat "
        "with; omissions then break liveness only — see the Thm 3.2 demos)");
  const auto st = pairing_states();
  SknoAttackPlan plan;
  plan.o = o;
  plan.n = 2 * (o + 1) + 2;
  plan.victim = static_cast<AgentId>(2 * (o + 1));
  const auto generator = static_cast<AgentId>(2 * (o + 1) + 1);
  plan.producers = o + 1;
  plan.expected_critical = o + 2;

  plan.initial.assign(plan.n, st.consumer);
  for (std::size_t k = 0; k <= o; ++k)
    plan.initial[2 * k] = st.producer;

  for (std::size_t k = 0; k <= o; ++k) {
    const auto pk = static_cast<AgentId>(2 * k);
    const auto ck = static_cast<AgentId>(2 * k + 1);
    for (std::size_t i = 0; i < k; ++i)
      plan.script.push_back(Interaction{pk, ck, false});
    plan.script.push_back(Interaction{pk, plan.victim, false});  // steal k+1
    plan.script.push_back(Interaction{generator, ck, true, OmitSide::Reactor});
    ++plan.omissions;
    for (std::size_t i = 0; i < o - k; ++i)
      plan.script.push_back(Interaction{pk, ck, false});
  }
  return plan;
}

}  // namespace ppfs

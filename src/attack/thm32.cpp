#include "attack/thm32.hpp"

#include <stdexcept>

#include "protocols/pairing.hpp"
#include "sched/scheduler.hpp"
#include "sim/skno.hpp"
#include "sim/tw_naive.hpp"
#include "util/rng.hpp"
#include "verify/monitors.hpp"

namespace ppfs {

No1DemoReport run_t1_no1_demo() {
  const auto st = pairing_states();
  auto protocol = make_pairing_protocol();

  No1DemoReport rep;
  rep.model = Model::T1;
  rep.candidate = "TwSimulator (apply delta per interaction, o = h = id)";

  // Sanity: in fault-free TW the wrapper is a correct simulator.
  {
    TwSimulator ok(protocol, Model::TW, {st.consumer, st.producer});
    ok.interact(Interaction{1, 0, false});  // (p, c) -> (bot, cs)
    rep.works_without_omissions = ok.simulated_state(0) == st.critical &&
                                  ok.simulated_state(1) == st.bottom;
  }

  // The NO1 attack: agents {c, p, c}; one starter-side omission on the
  // producer, then a single fault-free interaction re-consumes it.
  TwSimulator sim(protocol, Model::T1, {st.consumer, st.producer, st.consumer});
  PairingMonitor monitor(sim.projection());
  sim.interact(Interaction{1, 0, true, OmitSide::Starter});  // c0 -> cs, p unaware
  monitor.observe(sim.projection());
  sim.interact(Interaction{1, 2, false});  // p consumed "again": c2 -> cs
  monitor.observe(sim.projection());

  rep.omissions = 1;
  rep.safety_violated = monitor.safety_violated();
  rep.detail = "critical=" + std::to_string(monitor.max_critical()) +
               " producers=" + std::to_string(monitor.producers());
  return rep;
}

No1DemoReport run_oneway_no1_demo(Model model, std::size_t o,
                                  std::size_t probe_steps, std::uint64_t seed) {
  if (model != Model::I1 && model != Model::I2)
    throw std::invalid_argument("run_oneway_no1_demo: model must be I1 or I2");
  if (o < 1) throw std::invalid_argument("run_oneway_no1_demo: o >= 1");
  const auto st = pairing_states();
  auto protocol = make_pairing_protocol();

  No1DemoReport rep;
  rep.model = model;
  rep.candidate = "token candidate (SKnO without jokers — none can be minted)";

  // Sanity: with zero omissions the candidate does simulate.
  {
    SknoSimulator ok(protocol, model, o, {st.producer, st.consumer});
    for (std::size_t i = 0; i < o + 1; ++i) ok.interact(Interaction{0, 1, false});
    for (std::size_t i = 0; i < o + 1; ++i) ok.interact(Interaction{1, 0, false});
    rep.works_without_omissions = ok.simulated_state(0) == st.bottom &&
                                  ok.simulated_state(1) == st.critical;
  }

  // NO1: one omission up front, then a long fault-free fair schedule.
  SknoSimulator sim(protocol, model, o, {st.producer, st.consumer});
  sim.interact(Interaction{0, 1, true});  // kills in-flight token(s), no joker
  rep.omissions = 1;
  UniformScheduler sched(2);
  Rng rng(seed);
  for (std::size_t i = 0; i < probe_steps; ++i) sim.interact(sched.next(rng, i));

  rep.updates_after_omission = sim.simulated_updates();
  rep.stalled = rep.updates_after_omission == 0;
  rep.detail = "tokens_killed=" + std::to_string(sim.stats().tokens_killed) +
               " pending(d0)=" + std::to_string(sim.is_pending(0)) +
               " pending(d1)=" + std::to_string(sim.is_pending(1));
  return rep;
}

}  // namespace ppfs

// The crafted minimal attack on SKnO (sharp version of Theorems 3.1/3.3
// for this concrete simulator): with the omission bound configured to o,
// exactly o+1 omissions suffice to violate the safety of the Pairing
// problem — one "stolen" token per producer feeds a phantom run to the
// victim while each cheated consumer completes its own run with the joker
// minted by the omission ("Rummy" cheating). With at most o omissions the
// simulator is safe (Theorem 4.1), so its resilience threshold is exactly
// its configured bound.
//
// Layout (n = 2(o+1) + 2 agents):
//   pairs (P_k = 2k producer, C_k = 2k+1 consumer), k = 0..o
//   V = 2(o+1)   victim consumer, assembles the phantom run
//   G = 2(o+1)+1 omission generator
//
// Script per pair k:
//   k  x (P_k -> C_k)          P_k goes pending, transmits tokens 1..k
//   1  x (P_k -> V)            token k+1 stolen by the victim
//   1  x (G -> C_k) omissive   C_k detects, mints the compensating joker
//   o-k x (P_k -> C_k)         tokens k+2..o+1; C_k completes via joker
#pragma once

#include <vector>

#include "core/types.hpp"

namespace ppfs {

struct SknoAttackPlan {
  std::size_t o = 0;             // the simulator's configured bound
  std::size_t n = 0;             // 2(o+1) + 2
  std::vector<State> initial;    // pairing states
  std::vector<Interaction> script;
  std::size_t omissions = 0;     // o + 1
  AgentId victim = kNoAgent;
  std::size_t producers = 0;     // o + 1
  std::size_t expected_critical = 0;  // o + 2  (> producers)
};

[[nodiscard]] SknoAttackPlan build_skno_attack(std::size_t o);

}  // namespace ppfs

#include "attack/ftt.hpp"

#include <deque>

namespace ppfs {

std::optional<FttResult> find_ftt(const SimFactory& factory, State q0, State q1,
                                  std::size_t max_depth) {
  auto root = factory({q0, q1});
  const StatePair target = root->protocol().delta(q0, q1);
  if (target.starter == q0 && target.reactor == q1) return std::nullopt;

  struct Node {
    std::unique_ptr<Simulator> sim;
    std::vector<Interaction> run;
  };
  auto reached = [&](const Simulator& s) {
    return s.simulated_state(0) == target.starter &&
           s.simulated_state(1) == target.reactor;
  };
  if (reached(*root)) return FttResult{0, {}};

  std::deque<Node> frontier;
  frontier.push_back(Node{std::move(root), {}});
  const Interaction choices[2] = {Interaction{0, 1, false}, Interaction{1, 0, false}};
  for (std::size_t depth = 1; depth <= max_depth; ++depth) {
    std::deque<Node> next;
    while (!frontier.empty()) {
      Node node = std::move(frontier.front());
      frontier.pop_front();
      for (const Interaction& ia : choices) {
        auto child = node.sim->clone();
        child->interact(ia);
        auto run = node.run;
        run.push_back(ia);
        if (reached(*child)) return FttResult{depth, std::move(run)};
        next.push_back(Node{std::move(child), std::move(run)});
      }
    }
    frontier = std::move(next);
  }
  return std::nullopt;
}

}  // namespace ppfs

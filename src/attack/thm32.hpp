// Executable demonstrations of Theorem 3.2: in the models without usable
// omission detection — T1 (two-way, no detection) and the one-way I1/I2 —
// simulation collapses under the NO1 adversary (a single omission in the
// whole run).
//
//  * T1: the natural wrapper (apply delta on every interaction) is not
//    even safe: one starter-side omission leaves the producer unaware that
//    it was consumed, and a second (fault-free!) interaction consumes it
//    again — two critical consumers from one producer.
//
//  * I1/I2: the natural token candidate (SKnO stripped of its jokers,
//    because nobody can detect an omission to mint one) is safe but not
//    live: one omission silently kills an in-flight token (two tokens in
//    I2, where the reactor also "pops into the void"), the affected run
//    can never complete, and the two-agent system deadlocks with both
//    parties pending — zero simulated transitions forever after.
//
// Together: one omission forces a candidate to give up either safety or
// liveness, the executable content of the impossibility.
#pragma once

#include <string>

#include "core/models.hpp"

namespace ppfs {

struct No1DemoReport {
  Model model = Model::T1;
  std::string candidate;
  std::size_t omissions = 0;        // exactly 1 (NO1)
  bool works_without_omissions = false;
  bool safety_violated = false;     // T1 demo
  bool stalled = false;             // I1/I2 demo: no simulated step ever again
  std::size_t updates_after_omission = 0;
  std::string detail;
};

// T1: naive wrapper + Pairing, one starter-side omission, n = 3.
[[nodiscard]] No1DemoReport run_t1_no1_demo();

// I1 or I2: token candidate with redundancy o >= 1, n = 2, one omission,
// then `probe_steps` fault-free interactions under a fair schedule.
[[nodiscard]] No1DemoReport run_oneway_no1_demo(Model model, std::size_t o,
                                                std::size_t probe_steps,
                                                std::uint64_t seed);

}  // namespace ppfs

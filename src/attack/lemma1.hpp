// The Lemma 1 construction (§3.1, Figure 2) and its use in Theorem 3.1:
// an executable adversarial run I* that defeats any concrete simulator
// whose FTT is finite, by fooling t = FTT pairs of agents into simulating
// against each other while an auxiliary agent a_{2t} assembles one extra
// ("phantom") transition out of redirected interactions — with all
// omissions covered by a final generator agent a_{2t+1}.
//
// Applied to the Pairing protocol (q0 = p, q1 = c, q1' = cs) this yields
// t+1 critical agents against only t producers: a safety violation,
// produced by a run with finitely many omissions (NO adversary), which is
// the executable content of Theorem 3.1 (and, for thresholds, Thm 3.3).
#pragma once

#include <optional>
#include <string>

#include "attack/ftt.hpp"
#include "util/rng.hpp"

namespace ppfs {

struct Lemma1Report {
  std::size_t ftt = 0;        // t
  std::size_t agents = 0;     // 2t + 2
  std::size_t producers = 0;  // t  (simulated state q0)
  std::size_t consumers = 0;  // t + 2  (simulated state q1)
  std::size_t omissions = 0;  // omissive interactions in I*
  std::size_t script_len = 0;
  std::size_t critical = 0;   // agents that reached q1' after I* (+ extension)
  bool safety_violated = false;  // critical > producers
  std::string detail;
};

struct Lemma1Options {
  std::size_t max_ftt_depth = 16;
  std::size_t extension_cap = 4096;  // per-I_k extension search budget
  std::size_t gf_suffix = 0;         // extra random (GF) interactions after I*
  std::uint64_t seed = 42;
};

// `factory` builds the simulator under attack over arbitrary initial
// simulated states (same model/parameters each time). The simulated
// protocol must be symmetric on (q0, q1) — Lemma 1's hypothesis; for the
// Pairing protocol pass q0 = producer, q1 = consumer.
[[nodiscard]] std::optional<Lemma1Report> run_lemma1_attack(
    const SimFactory& factory, State q0, State q1, const Lemma1Options& opt = {});

}  // namespace ppfs

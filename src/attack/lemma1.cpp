#include "attack/lemma1.hpp"

#include <sstream>

#include "sched/scheduler.hpp"

namespace ppfs {

namespace {

// Remap a two-agent interaction (agents 0/1 = d0/d1) onto the pair
// (2k, 2k+1) of the big system.
Interaction remap_pair(const Interaction& ia, std::size_t k) {
  auto m = [&](AgentId a) {
    return static_cast<AgentId>(2 * k + (a == 0 ? 0 : 1));
  };
  return Interaction{m(ia.starter), m(ia.reactor), ia.omissive, ia.side};
}

}  // namespace

std::optional<Lemma1Report> run_lemma1_attack(const SimFactory& factory, State q0,
                                              State q1, const Lemma1Options& opt) {
  // --- Step 1: FTT and the witness run I on two agents (d0=q0, d1=q1). ---
  const auto ftt = find_ftt(factory, q0, q1, opt.max_ftt_depth);
  if (!ftt || ftt->ftt == 0) return std::nullopt;
  const std::size_t t = ftt->ftt;
  const std::vector<Interaction>& I = ftt->run;

  auto probe = factory({q0, q1});
  const State q1_prime = probe->protocol().delta(q0, q1).reactor;

  // --- Step 2: for each k, the run I_k = I[0..k-1] + omission + extension
  //             (extension = interactions until d1 reaches q1'). ---------
  struct IkParts {
    std::vector<Interaction> prefix;     // I[0..k-1]
    Interaction omissive;                // same starter as I[k], omissive
    std::vector<Interaction> extension;  // I_k[k+1 .. t_k-1]
  };
  std::vector<IkParts> iks;
  iks.reserve(t);
  for (std::size_t k = 0; k < t; ++k) {
    IkParts parts;
    parts.prefix.assign(I.begin(), I.begin() + static_cast<std::ptrdiff_t>(k));
    parts.omissive = I[k];
    parts.omissive.omissive = true;
    parts.omissive.side = OmitSide::Reactor;  // detection on the receiving side

    auto sim = factory({q0, q1});
    for (const auto& ia : parts.prefix) sim->interact(ia);
    const bool done_in_prefix = sim->simulated_state(1) == q1_prime;
    sim->interact(parts.omissive);
    if (!done_in_prefix && sim->simulated_state(1) != q1_prime) {
      // Extend without further omissions until d1 transitions. Phase 1:
      // keep transmitting d0 -> d1 (the natural continuation); phase 2:
      // alternate directions; both deterministic.
      bool reached = false;
      std::size_t budget = opt.extension_cap;
      const Interaction fwd{0, 1, false};
      const Interaction bwd{1, 0, false};
      std::size_t step = 0;
      while (budget-- > 0) {
        const Interaction ia = (step < t + 1) ? fwd : (step % 2 == 0 ? fwd : bwd);
        ++step;
        sim->interact(ia);
        parts.extension.push_back(ia);
        if (sim->simulated_state(1) == q1_prime) {
          reached = true;
          break;
        }
      }
      if (!reached) return std::nullopt;  // not a NO1-resilient simulator
    }
    iks.push_back(std::move(parts));
  }

  // --- Step 3: assemble I* = J_0 .. J_{t-1} on 2t+2 agents. -------------
  const std::size_t n = 2 * t + 2;
  const auto v = static_cast<AgentId>(2 * t);      // phantom victim a_{2t}
  const auto g = static_cast<AgentId>(2 * t + 1);  // omission generator
  std::vector<Interaction> star;
  std::size_t omissions = 0;
  for (std::size_t k = 0; k < t; ++k) {
    const IkParts& parts = iks[k];
    for (const auto& ia : parts.prefix) star.push_back(remap_pair(ia, k));
    // Redirected step: a real interaction between a_{2k} and a_{2t} with
    // a_{2k} in d0's role of I_k[k], and an omissive interaction between
    // a_{2k+1} and a_{2t+1} with a_{2k+1} in d1's role.
    const bool d0_starts = parts.omissive.starter == 0;
    const auto p = static_cast<AgentId>(2 * k);      // plays d0
    const auto c = static_cast<AgentId>(2 * k + 1);  // plays d1
    if (d0_starts) {
      star.push_back(Interaction{p, v, false});
      star.push_back(Interaction{g, c, true, OmitSide::Reactor});
    } else {
      star.push_back(Interaction{v, p, false});
      star.push_back(Interaction{c, g, true, OmitSide::Reactor});
    }
    ++omissions;
    for (const auto& ia : parts.extension) star.push_back(remap_pair(ia, k));
  }

  // --- Step 4: execute I* from B0 (t producers, t+2 consumers). ---------
  std::vector<State> initial(n, q1);
  for (std::size_t k = 0; k < t; ++k) initial[2 * k] = q0;
  auto big = factory(initial);
  for (const auto& ia : star) big->interact(ia);

  // Optional GF suffix: the violation is irrevocable, so it survives any
  // fair continuation (Theorem 3.1's closing argument).
  if (opt.gf_suffix > 0) {
    Rng rng(opt.seed);
    UniformScheduler sched(n);
    for (std::size_t i = 0; i < opt.gf_suffix; ++i)
      big->interact(sched.next(rng, i));
  }

  Lemma1Report rep;
  rep.ftt = t;
  rep.agents = n;
  rep.producers = t;
  rep.consumers = t + 2;
  rep.omissions = omissions;
  rep.script_len = star.size();
  for (AgentId a = 0; a < n; ++a)
    if (big->simulated_state(a) == q1_prime) ++rep.critical;
  rep.safety_violated = rep.critical > rep.producers;
  std::ostringstream os;
  os << "FTT=" << t << " run-I=[";
  for (const auto& ia : I) os << (ia.starter == 0 ? "(d0,d1)" : "(d1,d0)");
  os << "]";
  rep.detail = os.str();
  return rep;
}

}  // namespace ppfs

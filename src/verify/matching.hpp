// Executable counterparts of Definition 3 (perfect matching of events) and
// Definition 4 (derived execution) from §2.4.
//
// A simulator's event log is checked by three HARD conditions:
//
//   1. per-event delta-consistency — Definition 3's equation, evaluated at
//      each event's own configuration: a starter-half event must satisfy
//      after == delta(before, partner)[0], a reactor-half event
//      after == delta(partner, before)[1];
//   2. per-agent chain continuity: each agent's events form a chain from
//      its initial simulated state (no state teleports);
//   3. a perfect matching: every starter half pairs with a distinct-agent
//      reactor half of equal signature (qs, qr) — order-free, which is
//      exactly what Definition 3 requires, since the two halves of a
//      simulated interaction happen at different physical times. Events
//      left unmatched are transactions still open when the finite
//      experiment stopped; they must stay below the caller's allowance.
//
// Additionally, a SOFT diagnostic reconstructs a sequentialized derived
// run (Definition 4): pairs are scheduled when both halves reach the
// front of their agents' event queues, using the simulator's provenance
// keys first and signature role-switching (the paper's anonymity
// argument) for the remainder. Note a technicality the paper glosses
// over: transactions of a token-based simulator may overlap so that NO
// ordering of *atomic* pairs respects every agent's chain (each half
// really occurs at its own time); such residual pairs are reported in
// `unlinearized` and excluded from the exported derived run. The
// exported prefix is always a valid execution of P by construction.
#pragma once

#include <string>
#include <vector>

#include "core/protocol.hpp"
#include "sim/simulator.hpp"

namespace ppfs {

struct MatchedPair {
  std::size_t starter_ev;  // index into the event log
  std::size_t reactor_ev;
};

struct DerivedStep {
  AgentId starter;
  AgentId reactor;
  State qs;
  State qr;
};

// One element of the sequentialized derived execution: either a full
// simulated two-way interaction (pair) or the lone half of a transaction
// still open at the end of the finite experiment (open halves must be
// applied as direct state patches when replaying).
struct DerivedElement {
  bool is_pair;
  DerivedStep step;    // valid when is_pair
  AgentId agent;       // valid when !is_pair
  State before, after; // valid when !is_pair
};

struct MatchingReport {
  bool ok = false;

  // Hard checks.
  std::size_t pairs = 0;         // order-free matched pairs (Def. 3)
  std::size_t unmatched = 0;     // events with no partner (open transactions)
  std::size_t delta_errors = 0;
  std::size_t chain_errors = 0;
  std::vector<MatchedPair> matching;

  // Soft diagnostics: sequentialized derived run (Def. 4).
  std::size_t linearized_pairs = 0;
  std::size_t unlinearized = 0;  // pairs excluded by transaction overlap
  std::vector<DerivedStep> derived_run;      // the paired steps, in order
  std::vector<DerivedElement> derived_seq;   // pairs + open halves, in order

  std::vector<std::string> errors;  // first few diagnostic messages
};

struct VerifyOptions {
  // Maximum events that may remain unmatched (open transactions at the end
  // of a finite run). A good default for our simulators is ~2n.
  std::size_t max_unmatched = 0;
  std::size_t max_error_messages = 8;
};

[[nodiscard]] MatchingReport verify_matching(const Protocol& p,
                                             const std::vector<SimEvent>& events,
                                             const std::vector<State>& initial,
                                             const VerifyOptions& opt);

// Convenience: verify a simulator's own log against its initial projection.
[[nodiscard]] MatchingReport verify_simulation(const Simulator& sim,
                                               std::size_t max_unmatched);

}  // namespace ppfs

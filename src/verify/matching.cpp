#include "verify/matching.hpp"

#include <algorithm>
#include <deque>
#include <map>

namespace ppfs {

namespace {

using Sig = std::pair<State, State>;  // (qs, qr) of the simulated interaction

Sig signature_of(const SimEvent& e) {
  return e.half == Half::Starter ? Sig{e.before, e.partner} : Sig{e.partner, e.before};
}

void add_error(MatchingReport& rep, const VerifyOptions& opt, std::string msg) {
  if (rep.errors.size() < opt.max_error_messages) rep.errors.push_back(std::move(msg));
}

}  // namespace

MatchingReport verify_matching(const Protocol& p, const std::vector<SimEvent>& events,
                               const std::vector<State>& initial,
                               const VerifyOptions& opt) {
  MatchingReport rep;
  const std::size_t n_agents = initial.size();

  // --- 1. per-event delta-consistency (Definition 3's equation) --------
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SimEvent& e = events[i];
    const auto [qs, qr] = signature_of(e);
    const StatePair out = p.delta(qs, qr);
    const State expect = e.half == Half::Starter ? out.starter : out.reactor;
    if (e.after != expect) {
      ++rep.delta_errors;
      add_error(rep, opt,
                "event " + std::to_string(i) + " (agent " + std::to_string(e.agent) +
                    "): after=" + p.state_name(e.after) + " but delta gives " +
                    p.state_name(expect));
    }
  }

  // --- 2. per-agent chain continuity ------------------------------------
  {
    std::vector<State> chain(initial);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const SimEvent& e = events[i];
      if (e.agent >= n_agents) {
        ++rep.chain_errors;
        add_error(rep, opt, "event " + std::to_string(i) + ": agent out of range");
        continue;
      }
      if (chain[e.agent] != e.before) {
        ++rep.chain_errors;
        add_error(rep, opt,
                  "event " + std::to_string(i) + ": agent " +
                      std::to_string(e.agent) + " expected state " +
                      p.state_name(chain[e.agent]) + ", event says " +
                      p.state_name(e.before));
      }
      chain[e.agent] = e.after;
    }
  }

  // --- 3. order-free perfect matching (Definition 3) --------------------
  // Within a signature class every starter half is delta-compatible with
  // every reactor half, so matching is a per-class bipartite problem whose
  // only constraint is distinct agents. Greedy FIFO with one-step
  // lookahead for agent conflicts attains the maximum in these classes
  // (an agent conflict only arises between two events of one agent, which
  // can always be crossed with any other entry — the paper's anonymity
  // role-switching).
  {
    std::map<Sig, std::pair<std::deque<std::size_t>, std::deque<std::size_t>>> cls;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].agent >= n_agents) continue;
      auto& [starters, reactors] = cls[signature_of(events[i])];
      (events[i].half == Half::Starter ? starters : reactors).push_back(i);
    }
    for (auto& [sig, lists] : cls) {
      auto& [ss, rr] = lists;
      while (!ss.empty() && !rr.empty()) {
        std::size_t s = ss.front();
        std::size_t r = rr.front();
        if (events[s].agent == events[r].agent) {
          // Cross with the next entry on either side if possible.
          if (rr.size() > 1) {
            r = rr[1];
            rr.erase(rr.begin() + 1);
            ss.pop_front();
          } else if (ss.size() > 1) {
            s = ss[1];
            ss.erase(ss.begin() + 1);
            rr.pop_front();
          } else {
            break;  // lone same-agent couple: genuinely unmatchable
          }
        } else {
          ss.pop_front();
          rr.pop_front();
        }
        rep.matching.push_back(MatchedPair{s, r});
      }
      rep.unmatched += ss.size() + rr.size();
    }
    rep.pairs = rep.matching.size();
  }
  if (rep.unmatched > opt.max_unmatched) {
    add_error(rep, opt,
              "unmatched events: " + std::to_string(rep.unmatched) + " > allowance " +
                  std::to_string(opt.max_unmatched));
  }

  // --- 4. soft: sequentialized derived run (Definition 4) --------------
  // Schedule provenance-keyed pairs when both halves reach their agents'
  // queue fronts; orphans (self-keyed or tail events) pair by signature
  // among fronts or advance unmatched; overlapping transactions that defy
  // atomic sequencing are dissolved and counted in `unlinearized`.
  {
    std::vector<std::vector<std::size_t>> agenda(n_agents);
    for (std::size_t i = 0; i < events.size(); ++i)
      if (events[i].agent < n_agents) agenda[events[i].agent].push_back(i);
    std::vector<std::size_t> front(n_agents, 0);

    constexpr std::size_t kNone = SIZE_MAX;
    std::vector<std::size_t> key_partner(events.size(), kNone);
    {
      std::map<std::uint64_t, std::pair<std::size_t, std::size_t>> groups;
      std::map<std::uint64_t, bool> bad;
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].agent >= n_agents) continue;
        auto it = groups.try_emplace(events[i].key, kNone, kNone).first;
        auto& slot = events[i].half == Half::Starter ? it->second.first
                                                     : it->second.second;
        if (slot != kNone) bad[events[i].key] = true;
        slot = i;
      }
      for (const auto& [key, pr] : groups) {
        if (bad.count(key) || pr.first == kNone || pr.second == kNone) continue;
        if (events[pr.first].agent == events[pr.second].agent) continue;
        key_partner[pr.first] = pr.second;
        key_partner[pr.second] = pr.first;
      }
    }

    auto front_ev = [&](AgentId a) -> std::size_t {
      return front[a] < agenda[a].size() ? agenda[a][front[a]] : kNone;
    };
    auto emit_pair = [&](std::size_t ev_a, std::size_t ev_b) {
      const bool a_is_starter = events[ev_a].half == Half::Starter;
      const std::size_t es = a_is_starter ? ev_a : ev_b;
      const std::size_t er = a_is_starter ? ev_b : ev_a;
      const DerivedStep step{events[es].agent, events[er].agent, events[es].before,
                             events[er].before};
      rep.derived_run.push_back(step);
      rep.derived_seq.push_back(DerivedElement{true, step, kNoAgent, 0, 0});
      ++front[events[ev_a].agent];
      ++front[events[ev_b].agent];
      ++rep.linearized_pairs;
    };

    for (;;) {
      bool progressed = false;
      // (a) provenance pairs with both halves at front.
      for (AgentId a = 0; a < n_agents && !progressed; ++a) {
        const std::size_t ea = front_ev(a);
        if (ea == kNone || key_partner[ea] == kNone) continue;
        const std::size_t eb = key_partner[ea];
        if (front_ev(events[eb].agent) == eb) {
          emit_pair(ea, eb);
          progressed = true;
        }
      }
      if (progressed) continue;
      // (b) signature role-switching among orphan fronts.
      std::map<std::pair<Sig, Half>, std::size_t> pool;
      for (AgentId a = 0; a < n_agents && !progressed; ++a) {
        const std::size_t ea = front_ev(a);
        if (ea == kNone || key_partner[ea] != kNone) continue;
        const SimEvent& e = events[ea];
        const Sig sig = signature_of(e);
        const Half other = e.half == Half::Starter ? Half::Reactor : Half::Starter;
        if (auto it = pool.find({sig, other}); it != pool.end()) {
          emit_pair(it->second, ea);
          progressed = true;
          break;
        }
        pool.try_emplace({sig, e.half}, ea);
      }
      if (progressed) continue;
      // (c) advance the oldest orphan front; if none, dissolve the oldest
      // front's pair (transaction overlap defeating atomic sequencing).
      AgentId oldest_orphan = kNoAgent, oldest_any = kNoAgent;
      std::uint64_t orphan_seq = ~0ULL, any_seq = ~0ULL;
      for (AgentId a = 0; a < n_agents; ++a) {
        const std::size_t ea = front_ev(a);
        if (ea == kNone) continue;
        if (events[ea].seq < any_seq) {
          any_seq = events[ea].seq;
          oldest_any = a;
        }
        if (key_partner[ea] == kNone && events[ea].seq < orphan_seq) {
          orphan_seq = events[ea].seq;
          oldest_orphan = a;
        }
      }
      if (oldest_any == kNoAgent) break;  // all queues drained
      if (oldest_orphan != kNoAgent) {
        const SimEvent& e = events[front_ev(oldest_orphan)];
        rep.derived_seq.push_back(
            DerivedElement{false, {}, e.agent, e.before, e.after});
        ++front[oldest_orphan];
      } else {
        const std::size_t ea = front_ev(oldest_any);
        key_partner[key_partner[ea]] = kNone;
        key_partner[ea] = kNone;
        ++rep.unlinearized;
      }
    }
  }

  rep.ok = rep.delta_errors == 0 && rep.chain_errors == 0 &&
           rep.unmatched <= opt.max_unmatched;
  return rep;
}

MatchingReport verify_simulation(const Simulator& sim, std::size_t max_unmatched) {
  VerifyOptions opt;
  opt.max_unmatched = max_unmatched;
  return verify_matching(sim.protocol(), sim.events(), sim.initial_projection(), opt);
}

}  // namespace ppfs

// Problem-specification monitors. The central one is the Pairing problem
// (Definition 5): irrevocability, safety (#critical never exceeds the
// number of producers) and liveness (eventually #critical stabilizes at
// min(#consumers, #producers)). Safety violations of Pair are exactly
// what the impossibility experiments of §3 must exhibit.
#pragma once

#include <cstddef>
#include <vector>

#include "core/protocol.hpp"
#include "core/types.hpp"

namespace ppfs {

class PairingMonitor {
 public:
  // `initial` must be a configuration of the pairing protocol.
  explicit PairingMonitor(const std::vector<State>& initial);

  // Feed the current projected configuration (same agent order each time).
  void observe(const std::vector<State>& projection);

  [[nodiscard]] std::size_t consumers() const noexcept { return consumers_; }
  [[nodiscard]] std::size_t producers() const noexcept { return producers_; }
  [[nodiscard]] std::size_t max_critical() const noexcept { return max_critical_; }
  [[nodiscard]] std::size_t current_critical() const noexcept { return current_; }

  // Safety (Def. 5): at all observed times, #cs <= #producers.
  [[nodiscard]] bool safety_violated() const noexcept {
    return max_critical_ > producers_;
  }
  // Irrevocability: no agent ever left cs, and only consumers entered it.
  [[nodiscard]] bool irrevocability_violated() const noexcept {
    return irrevocability_violated_;
  }
  // Liveness target: #cs == min(#consumers, #producers).
  [[nodiscard]] bool target_reached() const noexcept {
    return current_ == std::min(consumers_, producers_);
  }

 private:
  std::size_t consumers_ = 0;
  std::size_t producers_ = 0;
  std::size_t max_critical_ = 0;
  std::size_t current_ = 0;
  bool irrevocability_violated_ = false;
  std::vector<bool> was_critical_;
  std::vector<bool> was_consumer_;
};

// True if every agent's state maps to `expected` under the protocol's
// output function (the stable-consensus probe used across experiments).
[[nodiscard]] bool projection_consensus(const Protocol& p,
                                        const std::vector<State>& projection,
                                        int expected);

}  // namespace ppfs

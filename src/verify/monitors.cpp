#include "verify/monitors.hpp"

#include <algorithm>
#include <stdexcept>

#include "protocols/pairing.hpp"

namespace ppfs {

PairingMonitor::PairingMonitor(const std::vector<State>& initial) {
  const auto st = pairing_states();
  was_critical_.resize(initial.size(), false);
  was_consumer_.resize(initial.size(), false);
  for (std::size_t i = 0; i < initial.size(); ++i) {
    if (initial[i] == st.consumer) {
      ++consumers_;
      was_consumer_[i] = true;
    } else if (initial[i] == st.producer) {
      ++producers_;
    } else {
      throw std::invalid_argument("PairingMonitor: non-initial pairing state");
    }
  }
}

void PairingMonitor::observe(const std::vector<State>& projection) {
  const auto st = pairing_states();
  if (projection.size() != was_critical_.size())
    throw std::invalid_argument("PairingMonitor: projection arity changed");
  std::size_t critical = 0;
  for (std::size_t i = 0; i < projection.size(); ++i) {
    const bool is_cs = projection[i] == st.critical;
    if (is_cs) {
      ++critical;
      // Only consumers may ever reach cs.
      if (!was_consumer_[i]) irrevocability_violated_ = true;
      was_critical_[i] = true;
    } else if (was_critical_[i]) {
      // Once critical, forever critical.
      irrevocability_violated_ = true;
    }
  }
  current_ = critical;
  max_critical_ = std::max(max_critical_, critical);
}

bool projection_consensus(const Protocol& p, const std::vector<State>& projection,
                          int expected) {
  return std::all_of(projection.begin(), projection.end(),
                     [&](State q) { return p.output(q) == expected; });
}

}  // namespace ppfs

file(REMOVE_RECURSE
  "CMakeFiles/bench_thm41_skno.dir/bench/bench_thm41_skno.cpp.o"
  "CMakeFiles/bench_thm41_skno.dir/bench/bench_thm41_skno.cpp.o.d"
  "bench_thm41_skno"
  "bench_thm41_skno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm41_skno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_thm41_skno.
# This may be replaced when dependencies are built.

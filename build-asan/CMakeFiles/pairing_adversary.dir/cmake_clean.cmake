file(REMOVE_RECURSE
  "CMakeFiles/pairing_adversary.dir/examples/pairing_adversary.cpp.o"
  "CMakeFiles/pairing_adversary.dir/examples/pairing_adversary.cpp.o.d"
  "pairing_adversary"
  "pairing_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairing_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

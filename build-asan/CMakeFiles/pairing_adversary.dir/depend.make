# Empty dependencies file for pairing_adversary.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_thm45_sid.
# This may be replaced when dependencies are built.

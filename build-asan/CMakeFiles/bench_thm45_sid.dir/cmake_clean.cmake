file(REMOVE_RECURSE
  "CMakeFiles/bench_thm45_sid.dir/bench/bench_thm45_sid.cpp.o"
  "CMakeFiles/bench_thm45_sid.dir/bench/bench_thm45_sid.cpp.o.d"
  "bench_thm45_sid"
  "bench_thm45_sid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm45_sid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tw_naive_test.dir/tests/tw_naive_test.cpp.o"
  "CMakeFiles/tw_naive_test.dir/tests/tw_naive_test.cpp.o.d"
  "tw_naive_test"
  "tw_naive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tw_naive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

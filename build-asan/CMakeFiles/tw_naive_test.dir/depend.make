# Empty dependencies file for tw_naive_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for sid_test.
# This may be replaced when dependencies are built.

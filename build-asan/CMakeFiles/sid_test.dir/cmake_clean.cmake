file(REMOVE_RECURSE
  "CMakeFiles/sid_test.dir/tests/sid_test.cpp.o"
  "CMakeFiles/sid_test.dir/tests/sid_test.cpp.o.d"
  "sid_test"
  "sid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

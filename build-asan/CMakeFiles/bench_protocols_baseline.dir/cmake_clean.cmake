file(REMOVE_RECURSE
  "CMakeFiles/bench_protocols_baseline.dir/bench/bench_protocols_baseline.cpp.o"
  "CMakeFiles/bench_protocols_baseline.dir/bench/bench_protocols_baseline.cpp.o.d"
  "bench_protocols_baseline"
  "bench_protocols_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocols_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_protocols_baseline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rule_matrix_test.dir/tests/rule_matrix_test.cpp.o"
  "CMakeFiles/rule_matrix_test.dir/tests/rule_matrix_test.cpp.o.d"
  "rule_matrix_test"
  "rule_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

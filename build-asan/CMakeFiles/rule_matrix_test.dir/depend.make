# Empty dependencies file for rule_matrix_test.
# This may be replaced when dependencies are built.

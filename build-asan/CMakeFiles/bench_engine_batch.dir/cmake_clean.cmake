file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_batch.dir/bench/bench_engine_batch.cpp.o"
  "CMakeFiles/bench_engine_batch.dir/bench/bench_engine_batch.cpp.o.d"
  "bench_engine_batch"
  "bench_engine_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_engine_batch.
# This may be replaced when dependencies are built.

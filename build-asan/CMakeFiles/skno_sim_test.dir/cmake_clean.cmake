file(REMOVE_RECURSE
  "CMakeFiles/skno_sim_test.dir/tests/skno_sim_test.cpp.o"
  "CMakeFiles/skno_sim_test.dir/tests/skno_sim_test.cpp.o.d"
  "skno_sim_test"
  "skno_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skno_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for skno_sim_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_thm31_lemma1.dir/bench/bench_thm31_lemma1.cpp.o"
  "CMakeFiles/bench_thm31_lemma1.dir/bench/bench_thm31_lemma1.cpp.o.d"
  "bench_thm31_lemma1"
  "bench_thm31_lemma1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm31_lemma1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

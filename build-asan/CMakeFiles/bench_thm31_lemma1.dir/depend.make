# Empty dependencies file for bench_thm31_lemma1.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/omission_process_test.dir/tests/omission_process_test.cpp.o"
  "CMakeFiles/omission_process_test.dir/tests/omission_process_test.cpp.o.d"
  "omission_process_test"
  "omission_process_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omission_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for omission_process_test.
# This may be replaced when dependencies are built.

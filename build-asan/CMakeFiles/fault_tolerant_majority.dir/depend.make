# Empty dependencies file for fault_tolerant_majority.
# This may be replaced when dependencies are built.

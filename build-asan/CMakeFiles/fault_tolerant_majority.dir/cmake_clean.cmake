file(REMOVE_RECURSE
  "CMakeFiles/fault_tolerant_majority.dir/examples/fault_tolerant_majority.cpp.o"
  "CMakeFiles/fault_tolerant_majority.dir/examples/fault_tolerant_majority.cpp.o.d"
  "fault_tolerant_majority"
  "fault_tolerant_majority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_tolerant_majority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/skno_t3_test.dir/tests/skno_t3_test.cpp.o"
  "CMakeFiles/skno_t3_test.dir/tests/skno_t3_test.cpp.o.d"
  "skno_t3_test"
  "skno_t3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skno_t3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for skno_t3_test.
# This may be replaced when dependencies are built.

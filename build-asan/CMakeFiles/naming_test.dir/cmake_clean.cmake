file(REMOVE_RECURSE
  "CMakeFiles/naming_test.dir/tests/naming_test.cpp.o"
  "CMakeFiles/naming_test.dir/tests/naming_test.cpp.o.d"
  "naming_test"
  "naming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

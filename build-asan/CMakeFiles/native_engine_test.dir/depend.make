# Empty dependencies file for native_engine_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/native_engine_test.dir/tests/native_engine_test.cpp.o"
  "CMakeFiles/native_engine_test.dir/tests/native_engine_test.cpp.o.d"
  "native_engine_test"
  "native_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for oneway_workloads_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/oneway_workloads_test.dir/tests/oneway_workloads_test.cpp.o"
  "CMakeFiles/oneway_workloads_test.dir/tests/oneway_workloads_test.cpp.o.d"
  "oneway_workloads_test"
  "oneway_workloads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oneway_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

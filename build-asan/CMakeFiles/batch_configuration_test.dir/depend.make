# Empty dependencies file for batch_configuration_test.
# This may be replaced when dependencies are built.

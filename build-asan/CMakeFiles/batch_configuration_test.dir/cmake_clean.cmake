file(REMOVE_RECURSE
  "CMakeFiles/batch_configuration_test.dir/tests/batch_configuration_test.cpp.o"
  "CMakeFiles/batch_configuration_test.dir/tests/batch_configuration_test.cpp.o.d"
  "batch_configuration_test"
  "batch_configuration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_configuration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

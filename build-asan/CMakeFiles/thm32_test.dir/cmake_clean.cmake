file(REMOVE_RECURSE
  "CMakeFiles/thm32_test.dir/tests/thm32_test.cpp.o"
  "CMakeFiles/thm32_test.dir/tests/thm32_test.cpp.o.d"
  "thm32_test"
  "thm32_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thm32_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for thm32_test.
# This may be replaced when dependencies are built.

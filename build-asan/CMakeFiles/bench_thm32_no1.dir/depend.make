# Empty dependencies file for bench_thm32_no1.
# This may be replaced when dependencies are built.

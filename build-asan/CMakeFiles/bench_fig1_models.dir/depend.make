# Empty dependencies file for bench_fig1_models.
# This may be replaced when dependencies are built.

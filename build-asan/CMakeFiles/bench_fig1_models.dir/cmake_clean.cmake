file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_models.dir/bench/bench_fig1_models.cpp.o"
  "CMakeFiles/bench_fig1_models.dir/bench/bench_fig1_models.cpp.o.d"
  "bench_fig1_models"
  "bench_fig1_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

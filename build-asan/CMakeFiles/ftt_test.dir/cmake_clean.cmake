file(REMOVE_RECURSE
  "CMakeFiles/ftt_test.dir/tests/ftt_test.cpp.o"
  "CMakeFiles/ftt_test.dir/tests/ftt_test.cpp.o.d"
  "ftt_test"
  "ftt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ftt_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/monitors_test.dir/tests/monitors_test.cpp.o"
  "CMakeFiles/monitors_test.dir/tests/monitors_test.cpp.o.d"
  "monitors_test"
  "monitors_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for monitors_test.
# This may be replaced when dependencies are built.

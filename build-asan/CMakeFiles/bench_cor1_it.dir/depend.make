# Empty dependencies file for bench_cor1_it.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_cor1_it.dir/bench/bench_cor1_it.cpp.o"
  "CMakeFiles/bench_cor1_it.dir/bench/bench_cor1_it.cpp.o.d"
  "bench_cor1_it"
  "bench_cor1_it.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cor1_it.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_map.dir/bench/bench_fig4_map.cpp.o"
  "CMakeFiles/bench_fig4_map.dir/bench/bench_fig4_map.cpp.o.d"
  "bench_fig4_map"
  "bench_fig4_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

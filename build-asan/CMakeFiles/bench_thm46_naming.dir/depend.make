# Empty dependencies file for bench_thm46_naming.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_thm46_naming.dir/bench/bench_thm46_naming.cpp.o"
  "CMakeFiles/bench_thm46_naming.dir/bench/bench_thm46_naming.cpp.o.d"
  "bench_thm46_naming"
  "bench_thm46_naming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm46_naming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/small_populations_test.dir/tests/small_populations_test.cpp.o"
  "CMakeFiles/small_populations_test.dir/tests/small_populations_test.cpp.o.d"
  "small_populations_test"
  "small_populations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_populations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

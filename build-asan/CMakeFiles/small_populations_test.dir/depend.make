# Empty dependencies file for small_populations_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lemma1_test.dir/tests/lemma1_test.cpp.o"
  "CMakeFiles/lemma1_test.dir/tests/lemma1_test.cpp.o.d"
  "lemma1_test"
  "lemma1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

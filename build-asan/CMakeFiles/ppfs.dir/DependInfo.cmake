
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/ftt.cpp" "CMakeFiles/ppfs.dir/src/attack/ftt.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/attack/ftt.cpp.o.d"
  "/root/repo/src/attack/lemma1.cpp" "CMakeFiles/ppfs.dir/src/attack/lemma1.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/attack/lemma1.cpp.o.d"
  "/root/repo/src/attack/skno_attack.cpp" "CMakeFiles/ppfs.dir/src/attack/skno_attack.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/attack/skno_attack.cpp.o.d"
  "/root/repo/src/attack/thm32.cpp" "CMakeFiles/ppfs.dir/src/attack/thm32.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/attack/thm32.cpp.o.d"
  "/root/repo/src/core/models.cpp" "CMakeFiles/ppfs.dir/src/core/models.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/core/models.cpp.o.d"
  "/root/repo/src/core/population.cpp" "CMakeFiles/ppfs.dir/src/core/population.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/core/population.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "CMakeFiles/ppfs.dir/src/core/protocol.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/core/protocol.cpp.o.d"
  "/root/repo/src/core/rule_matrix.cpp" "CMakeFiles/ppfs.dir/src/core/rule_matrix.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/core/rule_matrix.cpp.o.d"
  "/root/repo/src/engine/batch/batch_system.cpp" "CMakeFiles/ppfs.dir/src/engine/batch/batch_system.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/engine/batch/batch_system.cpp.o.d"
  "/root/repo/src/engine/batch/configuration.cpp" "CMakeFiles/ppfs.dir/src/engine/batch/configuration.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/engine/batch/configuration.cpp.o.d"
  "/root/repo/src/engine/batch/dispatch.cpp" "CMakeFiles/ppfs.dir/src/engine/batch/dispatch.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/engine/batch/dispatch.cpp.o.d"
  "/root/repo/src/engine/native.cpp" "CMakeFiles/ppfs.dir/src/engine/native.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/engine/native.cpp.o.d"
  "/root/repo/src/engine/runner.cpp" "CMakeFiles/ppfs.dir/src/engine/runner.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/engine/runner.cpp.o.d"
  "/root/repo/src/engine/stats.cpp" "CMakeFiles/ppfs.dir/src/engine/stats.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/engine/stats.cpp.o.d"
  "/root/repo/src/engine/trace.cpp" "CMakeFiles/ppfs.dir/src/engine/trace.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/engine/trace.cpp.o.d"
  "/root/repo/src/protocols/counting.cpp" "CMakeFiles/ppfs.dir/src/protocols/counting.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/counting.cpp.o.d"
  "/root/repo/src/protocols/leader.cpp" "CMakeFiles/ppfs.dir/src/protocols/leader.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/leader.cpp.o.d"
  "/root/repo/src/protocols/linear.cpp" "CMakeFiles/ppfs.dir/src/protocols/linear.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/linear.cpp.o.d"
  "/root/repo/src/protocols/logic.cpp" "CMakeFiles/ppfs.dir/src/protocols/logic.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/logic.cpp.o.d"
  "/root/repo/src/protocols/majority.cpp" "CMakeFiles/ppfs.dir/src/protocols/majority.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/majority.cpp.o.d"
  "/root/repo/src/protocols/oneway.cpp" "CMakeFiles/ppfs.dir/src/protocols/oneway.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/oneway.cpp.o.d"
  "/root/repo/src/protocols/pairing.cpp" "CMakeFiles/ppfs.dir/src/protocols/pairing.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/pairing.cpp.o.d"
  "/root/repo/src/protocols/parity.cpp" "CMakeFiles/ppfs.dir/src/protocols/parity.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/parity.cpp.o.d"
  "/root/repo/src/protocols/product.cpp" "CMakeFiles/ppfs.dir/src/protocols/product.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/product.cpp.o.d"
  "/root/repo/src/protocols/registry.cpp" "CMakeFiles/ppfs.dir/src/protocols/registry.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/protocols/registry.cpp.o.d"
  "/root/repo/src/sched/adversary.cpp" "CMakeFiles/ppfs.dir/src/sched/adversary.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sched/adversary.cpp.o.d"
  "/root/repo/src/sched/fairness.cpp" "CMakeFiles/ppfs.dir/src/sched/fairness.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sched/fairness.cpp.o.d"
  "/root/repo/src/sched/omission_process.cpp" "CMakeFiles/ppfs.dir/src/sched/omission_process.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sched/omission_process.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "CMakeFiles/ppfs.dir/src/sched/scheduler.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sched/scheduler.cpp.o.d"
  "/root/repo/src/sim/naming.cpp" "CMakeFiles/ppfs.dir/src/sim/naming.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sim/naming.cpp.o.d"
  "/root/repo/src/sim/sid.cpp" "CMakeFiles/ppfs.dir/src/sim/sid.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sim/sid.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "CMakeFiles/ppfs.dir/src/sim/simulator.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/skno.cpp" "CMakeFiles/ppfs.dir/src/sim/skno.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sim/skno.cpp.o.d"
  "/root/repo/src/sim/tw_naive.cpp" "CMakeFiles/ppfs.dir/src/sim/tw_naive.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/sim/tw_naive.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/ppfs.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/ppfs.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/util/table.cpp.o.d"
  "/root/repo/src/verify/matching.cpp" "CMakeFiles/ppfs.dir/src/verify/matching.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/verify/matching.cpp.o.d"
  "/root/repo/src/verify/monitors.cpp" "CMakeFiles/ppfs.dir/src/verify/monitors.cpp.o" "gcc" "CMakeFiles/ppfs.dir/src/verify/monitors.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libppfs.a"
)

# Empty dependencies file for ppfs.
# This may be replaced when dependencies are built.

# Empty dependencies file for batch_engine_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/batch_engine_test.dir/tests/batch_engine_test.cpp.o"
  "CMakeFiles/batch_engine_test.dir/tests/batch_engine_test.cpp.o.d"
  "batch_engine_test"
  "batch_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/skno_unit_test.dir/tests/skno_unit_test.cpp.o"
  "CMakeFiles/skno_unit_test.dir/tests/skno_unit_test.cpp.o.d"
  "skno_unit_test"
  "skno_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skno_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

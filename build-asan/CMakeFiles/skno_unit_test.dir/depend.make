# Empty dependencies file for skno_unit_test.
# This may be replaced when dependencies are built.

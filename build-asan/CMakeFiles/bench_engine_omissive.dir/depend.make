# Empty dependencies file for bench_engine_omissive.
# This may be replaced when dependencies are built.

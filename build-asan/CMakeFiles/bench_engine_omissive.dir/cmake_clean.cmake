file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_omissive.dir/bench/bench_engine_omissive.cpp.o"
  "CMakeFiles/bench_engine_omissive.dir/bench/bench_engine_omissive.cpp.o.d"
  "bench_engine_omissive"
  "bench_engine_omissive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_omissive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

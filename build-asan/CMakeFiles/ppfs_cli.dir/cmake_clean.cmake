file(REMOVE_RECURSE
  "CMakeFiles/ppfs_cli.dir/examples/ppfs_cli.cpp.o"
  "CMakeFiles/ppfs_cli.dir/examples/ppfs_cli.cpp.o.d"
  "ppfs_cli"
  "ppfs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppfs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ppfs_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/skno_attack_test.dir/tests/skno_attack_test.cpp.o"
  "CMakeFiles/skno_attack_test.dir/tests/skno_attack_test.cpp.o.d"
  "skno_attack_test"
  "skno_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skno_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

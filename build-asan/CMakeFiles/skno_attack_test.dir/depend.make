# Empty dependencies file for skno_attack_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/random_protocol_test.dir/tests/random_protocol_test.cpp.o"
  "CMakeFiles/random_protocol_test.dir/tests/random_protocol_test.cpp.o.d"
  "random_protocol_test"
  "random_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

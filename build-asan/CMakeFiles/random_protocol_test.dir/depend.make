# Empty dependencies file for random_protocol_test.
# This may be replaced when dependencies are built.

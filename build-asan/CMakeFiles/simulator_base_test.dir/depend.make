# Empty dependencies file for simulator_base_test.
# This may be replaced when dependencies are built.

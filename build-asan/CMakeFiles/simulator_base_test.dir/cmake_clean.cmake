file(REMOVE_RECURSE
  "CMakeFiles/simulator_base_test.dir/tests/simulator_base_test.cpp.o"
  "CMakeFiles/simulator_base_test.dir/tests/simulator_base_test.cpp.o.d"
  "simulator_base_test"
  "simulator_base_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_base_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/sensor_flock.dir/examples/sensor_flock.cpp.o"
  "CMakeFiles/sensor_flock.dir/examples/sensor_flock.cpp.o.d"
  "sensor_flock"
  "sensor_flock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_flock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

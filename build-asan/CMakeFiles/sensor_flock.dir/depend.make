# Empty dependencies file for sensor_flock.
# This may be replaced when dependencies are built.

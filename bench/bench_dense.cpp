// bench_dense — the round-batched dense regime (PR 8 tentpole) at scale.
//
// The dense cells are the ones the leap engines cannot help: beacon-or
// flips its phase on every real delivery, so fire density sits at ~1 and
// the leap path degenerates to one sampler draw + one count move per
// interaction. The round face (engine/batch/round_system.hpp) instead
// processes the maximal collision-free prefix — E[len] ~ sqrt(pi n)/2
// interactions — as one O(q^2) batch of hypergeometric splits, so the
// amortized per-interaction cost FALLS as n grows. Rows:
//
//   * speedup:dense-beacon-uo — auto(round face) / batch(leap) on the
//     I1 beacon-or + uo:0.01 cell at n = 10^6. CI floor: >= 2.0.
//   * speedup:dense-n1e9 — the same ratio at n = 10^9, both engines
//     built through the count-vector path (make_engine_from_counts;
//     per-agent vectors would cost gigabytes). CI floor: >= 2.0.
//   * dense-round-ns:n=10^k — round-face ns per covered interaction for
//     n in {10^6..10^9}: the sublinear-cost record the acceptance
//     criterion asks for (cost per interaction shrinks as rounds grow).
//   * dense-converge-n1e9 — beacon-or run to convergence at n = 10^9
//     under auto: the "standard workload completes at n = 10^9" row.
//
// Usage: bench_dense [--json]   (PPFS_SEED honored; writes BENCH_dense.json)
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "engine/batch/dispatch.hpp"
#include "protocols/registry.hpp"

namespace ppfs {
namespace {

using bench::bench_seed;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::unique_ptr<Engine> build(const std::string& kind, std::size_t n,
                              Model model, const std::string& adversary) {
  const OneWayWorkload w = find_one_way_workload("beacon-or", n, model);
  EngineConfig config;
  config.model = model;
  const AdversaryParams adv = parse_adversary_spec(adversary);
  if (adv.rate > 0.0) config.adversary = adv;
  // Above kPerAgentLimit the registry hands out counts, not agents.
  return w.initial_counts.empty()
             ? make_engine(kind, w.protocol, w.initial, config)
             : make_engine_from_counts(kind, w.protocol, w.initial_counts,
                                       config);
}

// Interactions/sec covering `steps` dense interactions.
double measure(const std::string& kind, std::size_t n, Model model,
               const std::string& adversary, std::size_t steps,
               std::uint64_t seed) {
  auto engine = build(kind, n, model, adversary);
  UniformScheduler sched(n);
  Rng rng(seed);
  const auto t0 = Clock::now();
  (void)run_engine_steps(*engine, sched, rng, steps);
  const double dt = seconds_since(t0);
  return static_cast<double>(steps) / (dt > 0 ? dt : 1e-9);
}

}  // namespace
}  // namespace ppfs

int main(int argc, char** argv) {
  using namespace ppfs;
  bench::JsonReport json("dense", argc, argv);
  bench::banner("dense regime: round face vs leap (interactions/sec)");

  const Model omissive = omissive_closure(Model::IT);  // I1

  // speedup:dense-beacon-uo — the named dense-omission cell at n = 10^6.
  {
    const std::size_t n = 1'000'000;
    const std::size_t steps = 20'000'000;
    const double batch = measure("batch", n, omissive, "uo:0.01", steps,
                                 bench_seed(31));
    const double auto_ips = measure("auto", n, omissive, "uo:0.01", steps,
                                    bench_seed(31));
    std::printf("%-34s %12.3e %12.3e %8.2fx (floor 2.0)\n",
                "beacon-or + uo:0.01, n=1e6", batch, auto_ips,
                auto_ips / batch);
    json.add("dense-beacon-uo [batch]", n, "I1", batch);
    json.add("dense-beacon-uo [auto]", n, "I1", auto_ips);
    json.add_ratio("speedup:dense-beacon-uo", n, "I1", auto_ips / batch);
  }

  // speedup:dense-n1e9 — the same contest at n = 10^9 through the
  // count-vector construction path.
  {
    const std::size_t n = 1'000'000'000;
    const std::size_t steps = 10'000'000;
    const double batch = measure("batch", n, omissive, "uo:0.01", steps,
                                 bench_seed(37));
    const double auto_ips = measure("auto", n, omissive, "uo:0.01", steps,
                                    bench_seed(37));
    std::printf("%-34s %12.3e %12.3e %8.2fx (floor 2.0)\n",
                "beacon-or + uo:0.01, n=1e9", batch, auto_ips,
                auto_ips / batch);
    json.add("dense-n1e9 [batch]", n, "I1", batch);
    json.add("dense-n1e9 [auto]", n, "I1", auto_ips);
    json.add_ratio("speedup:dense-n1e9", n, "I1", auto_ips / batch);
  }

  // Sublinear per-interaction cost: round-face ns/interaction across n.
  // Rounds lengthen like sqrt(n), so the O(q^2)-per-round overhead
  // amortizes and the per-interaction cost must FALL monotonically-ish.
  std::printf("\nround face, plain IT beacon-or (ns per interaction):\n");
  {
    const std::size_t steps = 20'000'000;
    const std::size_t ns[] = {1'000'000, 10'000'000, 100'000'000,
                              1'000'000'000};
    const char* labels[] = {"dense-round-ns:n=1e6", "dense-round-ns:n=1e7",
                            "dense-round-ns:n=1e8", "dense-round-ns:n=1e9"};
    for (std::size_t i = 0; i < 4; ++i) {
      const double ips =
          measure("auto", ns[i], Model::IT, "none", steps, bench_seed(41));
      const double ns_per = 1e9 / ips;
      std::printf("  n=%-12zu %10.2f ns/interaction (%.3e i/s)\n", ns[i],
                  ns_per, ips);
      json.add_metric(labels[i], ns[i], "IT", "ns_per_interaction", ns_per);
    }
  }

  // The completes-at-n=10^9 row: beacon-or to convergence under auto.
  {
    const std::size_t n = 1'000'000'000;
    const OneWayWorkload w = find_one_way_workload("beacon-or", n, Model::IT);
    EngineConfig config;
    config.model = Model::IT;
    auto engine =
        make_engine_from_counts("auto", w.protocol, w.initial_counts, config);
    UniformScheduler sched(n);
    Rng rng(bench_seed(43));
    auto conv = w.converged;
    CountsProbe probe = [conv](const std::vector<std::size_t>& counts,
                               const Protocol&) { return conv(counts); };
    RunOptions opt;
    opt.max_steps = 1'000'000'000'000'000ULL;
    opt.check_every = 1u << 24;
    const auto t0 = Clock::now();
    const RunResult res = run_engine_until(*engine, sched, rng, probe, opt);
    const double dt = seconds_since(t0);
    const double ips = static_cast<double>(res.steps) / (dt > 0 ? dt : 1e-9);
    std::printf(
        "\nconvergence: beacon-or at n=10^9 under auto[%s]: %s after %.3e "
        "interactions in %.2fs (%.3e i/s)\n",
        engine->active_kind().c_str(),
        res.converged ? "converged" : "DID NOT CONVERGE",
        static_cast<double>(res.steps), dt, ips);
    json.add("dense-converge-n1e9 [auto]", n, "IT", ips);
    json.add_metric("dense-converge-n1e9 interactions", n, "IT",
                    "interactions", static_cast<double>(res.steps));
  }
  return 0;
}

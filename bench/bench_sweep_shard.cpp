// SWEEP SERVICE — wall-clock scaling of sharded sweep execution across
// PROCESSES (fork + partial files + merge), the deployment shape the
// shard/merge contract exists for: k independent single-threaded workers,
// each writing a mergeable binary partial, folded back into one report.
//
// The grid is an embarrassingly parallel batch-engine sweep (count-space
// replicas at n = 10^6; every replica is a fat independent chunk). The
// bench times (a) the 1-process single-threaded drain and (b) four forked
// shard processes — shard i/4 each, --threads=1 — including the partial
// writes and the final merge_partials fold. Both paths must produce
// byte-identical report fingerprints (the tentpole contract; the bench
// FAILS on divergence, it does not just report it). The
// speedup:sweep-shard-1to4 ratio lands in BENCH_sweep_shard.json (--json /
// PPFS_BENCH_JSON); on a 4-vCPU runner it is expected >= 2x — CI enforces
// that floor — and near-4x on idle hardware.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_common.hpp"
#include "exp/sweep_service.hpp"
#include "util/binio.hpp"

namespace ppfs {
namespace {

constexpr std::size_t kShards = 4;
constexpr std::size_t kN = 1'000'000;

exp::SweepProvenance shard_prov(std::size_t index, std::size_t count) {
  exp::SweepProvenance prov;
  // 8 replicas of count-space exact majority at n = 10^6: 2 fat jobs per
  // shard at k = 4, enough to amortize fork/exec against real work.
  prov.grid = "exact-majority@n=1000000:engine=batch:trials=8";
  prov.trials = 8;
  prov.seed = bench::bench_seed(20260808);
  prov.shard_index = index;
  prov.shard_count = count;
  return prov;
}

std::string partial_path(std::size_t index) {
  return "bench_sweep_shard_partial_" + std::to_string(index) + ".bin";
}

// One shard's work, exactly as a `ppfs_cli --sweep --shard=i/k
// --threads=1` process would run it: drain the slice, write the partial
// atomically, exit.
void run_shard_process(std::size_t index) {
  exp::SweepServiceOptions opt;
  opt.threads = 1;
  const exp::SweepRun run = exp::run_sweep_shard(shard_prov(index, kShards), opt);
  const std::string image = exp::encode_partial(
      shard_prov(index, kShards), run.points, run.results, run.owned);
  bin::atomic_write_file(partial_path(index), image);
}

}  // namespace
}  // namespace ppfs

int main(int argc, char** argv) {
  using namespace ppfs;
  using clock = std::chrono::steady_clock;
  bench::JsonReport json("sweep_shard", argc, argv);
  bench::banner("Sharded sweep service: 1 process vs 4 forked shards");

  std::cout << "grid: " << shard_prov(0, 1).grid
            << "; hardware threads: " << std::thread::hardware_concurrency()
            << "\n\n";

  // Baseline: the whole job list in one single-threaded process.
  const auto t1_start = clock::now();
  exp::SweepRun whole = [] {
    exp::SweepServiceOptions opt;
    opt.threads = 1;
    return exp::run_sweep_shard(shard_prov(0, 1), opt);
  }();
  const exp::Report reference =
      exp::fold_report(whole.points, std::move(whole.results));
  const double t1 =
      std::chrono::duration<double>(clock::now() - t1_start).count();
  std::cout << "1 process  x 1 thread : " << t1 << " s\n";

  // Sharded: fork 4 workers, each drains shard i/4 and writes a partial;
  // the parent waits, reads the partials and folds them. The timed span is
  // the user-visible end-to-end path: fork -> drain -> partial I/O ->
  // merge.
  const auto t4_start = clock::now();
  std::vector<pid_t> children;
  for (std::size_t i = 0; i < kShards; ++i) {
    const pid_t pid = fork();
    if (pid == 0) {
      run_shard_process(i);
      _exit(0);
    }
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 1;
    }
    children.push_back(pid);
  }
  bool child_failed = false;
  for (const pid_t pid : children) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) child_failed = true;
  }
  if (child_failed) {
    std::cerr << "a shard process failed\n";
    return 1;
  }
  std::vector<std::string> images;
  for (std::size_t i = 0; i < kShards; ++i)
    images.push_back(bin::read_file(partial_path(i)));
  const exp::Report merged = exp::merge_partials(images);
  const double t4 =
      std::chrono::duration<double>(clock::now() - t4_start).count();
  for (std::size_t i = 0; i < kShards; ++i)
    std::remove(partial_path(i).c_str());
  std::cout << kShards << " processes x 1 thread : " << t4
            << " s  (fork + drain + partial I/O + merge)\n";

  // The contract first, the number second.
  if (merged.fingerprint() != reference.fingerprint()) {
    std::cerr << "FAIL: merged shard report is not byte-identical to the "
                 "1-process run\n";
    return 1;
  }
  std::cout << "merge byte-identity: ok\n";

  const double speedup = t4 > 0.0 ? t1 / t4 : 0.0;
  std::cout << "speedup 1 -> " << kShards << " shards: " << speedup << "x\n";

  json.add_metric("sweep-shard:1proc", kN, "TW", "seconds", t1);
  json.add_metric("sweep-shard:4shards", kN, "TW", "seconds", t4);
  json.add_ratio("speedup:sweep-shard-1to4", kN, "TW", speedup);
  return 0;
}

// THM32 — regenerates Theorem 3.2: a single omission (the NO1 adversary)
// already collapses simulation in the models without usable detection.
//
//  T1: the natural wrapper loses SAFETY (a producer is consumed twice).
//  I1, I2: the natural token candidate loses LIVENESS (the two-agent
//          system deadlocks with both parties pending, zero simulated
//          transitions forever).
#include "attack/thm32.hpp"
#include "bench_common.hpp"

namespace ppfs {
namespace {

void no1_table() {
  bench::banner("THM 3.2: one omission under T1 / I1 / I2");
  TextTable t({"model", "candidate", "sane w/o omissions", "omissions",
               "failure mode", "detail"});
  {
    const auto rep = run_t1_no1_demo();
    t.add_row({model_name(rep.model), rep.candidate,
               fmt_bool(rep.works_without_omissions),
               std::to_string(rep.omissions),
               rep.safety_violated ? "SAFETY VIOLATION" : "none(!)", rep.detail});
  }
  for (Model m : {Model::I1, Model::I2}) {
    for (std::size_t o : {1, 2, 3}) {
      const auto rep = run_oneway_no1_demo(m, o, /*probe_steps=*/100'000,
                                           /*seed=*/41 + o);
      t.add_row({model_name(rep.model) + " (o=" + std::to_string(o) + ")",
                 rep.candidate, fmt_bool(rep.works_without_omissions),
                 std::to_string(rep.omissions),
                 rep.stalled ? "PERMANENT STALL" : "none(!)", rep.detail});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper: in T1, I1, I2 simulation is impossible even under "
               "NO1 (at most one omission in the whole run) — detection is "
               "the decisive capability, since the same token machinery "
               "with reactor-side detection (I3, Theorem 4.1) survives any "
               "number of omissions up to its bound.\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Theorem 3.2 (NO1 impossibility)");
  ppfs::no1_table();
  return 0;
}

// FIG1 — regenerates Figure 1 of the paper: the interaction-model lattice.
//
//  Table 1: per-model capability matrix (the transition-relation
//           semantics of §2.2–2.3 in feature form).
//  Table 2: the hierarchy arrows, each mechanically verified on sampled
//           transition functions (specialization embeddings checked for
//           outcome-set equality, omission-avoidance/no-op embeddings for
//           the corresponding inclusion).
//  Table 3: native computability spot checks — what the weak models run
//           directly, without any simulator (OR/max/leader in IO, beacon
//           protocol in IT), and that two-way tables like Pairing do not
//           even fit the one-way shape.
#include "bench_common.hpp"
#include "engine/native.hpp"
#include "protocols/oneway.hpp"
#include "protocols/pairing.hpp"

namespace ppfs {
namespace {

void capability_matrix() {
  bench::banner("FIG1 / Table 1: model capability matrix");
  TextTable t({"model", "one-way", "omissive", "starter acts",
               "starter detects om.", "reactor acts on om.",
               "reactor detects om."});
  for (Model m : kAllModels) {
    const ModelCaps c = model_caps(m);
    t.add_row({model_name(m), fmt_bool(c.one_way), fmt_bool(c.omissive),
               fmt_bool(c.starter_acts), fmt_bool(c.starter_detects_omission),
               fmt_bool(c.reactor_acts_on_omission),
               fmt_bool(c.reactor_detects_omission)});
  }
  t.print(std::cout);
}

void arrows_table() {
  bench::banner("FIG1 / Table 2: hierarchy arrows (machine-checked)");
  TextTable t({"arrow", "justification", "note", "verified(q=2..5)"});
  for (const ModelArrow& a : model_arrows()) {
    bool ok = true;
    for (std::size_t q = 2; q <= 5; ++q)
      ok = ok && verify_arrow(a, q, /*samples=*/50, /*seed=*/99 + q);
    t.add_row({model_name(a.src) + " -> " + model_name(a.dst),
               arrow_reason_name(a.reason), a.note, fmt_bool(ok)});
  }
  t.print(std::cout);
}

bool run_io_native(const std::shared_ptr<const OneWayProtocol>& p,
                   std::vector<State> init, int expected) {
  OneWaySystem sys(p, Model::IO, std::move(init));
  UniformScheduler sched(sys.size());
  Rng rng(17);
  const auto res = run_until(sys, sched, rng, [&](const OneWaySystem& s) {
    return s.consensus_output() == expected;
  });
  return res.converged;
}

void native_computability() {
  bench::banner("FIG1 / Table 3: native computability in the weak models");
  TextTable t({"protocol", "model", "task", "result"});

  t.add_row({"io-or", "IO", "or-epidemic, n=16",
             run_io_native(make_io_or(),
                           [] {
                             std::vector<State> v(16, 0);
                             v[7] = 1;
                             return v;
                           }(),
                           1)
                 ? "converged"
                 : "FAILED"});
  t.add_row({"io-max", "IO", "max of inputs, n=12",
             run_io_native(make_io_max(8), {0, 3, 7, 1, 2, 5, 0, 4, 6, 1, 0, 2}, 7)
                 ? "converged"
                 : "FAILED"});
  {
    OneWaySystem sys(make_io_leader(), Model::IO, std::vector<State>(10, 0));
    UniformScheduler sched(10);
    Rng rng(23);
    const auto res = run_until(sys, sched, rng, [](const OneWaySystem& s) {
      std::size_t leaders = 0;
      for (State q : s.states())
        if (q == 0) ++leaders;
      return leaders == 1;
    });
    t.add_row({"io-leader", "IO", "elect exactly one leader, n=10",
               res.converged ? "converged" : "FAILED"});
  }
  {
    auto p = make_it_or_with_beacon();
    std::vector<State> init(12, 0);
    init[3] = 2;  // bit set, phase 0
    OneWaySystem sys(p, Model::IT, init);
    UniformScheduler sched(12);
    Rng rng(29);
    const auto res = run_until(sys, sched, rng, [&](const OneWaySystem& s) {
      return s.consensus_output() == 1;
    });
    t.add_row({"it-or-beacon", "IT", "or with starter-side beacon, n=12",
               res.converged ? "converged" : "FAILED"});
  }
  t.add_row({"pairing", "IT/IO", "fits one-way transition shape?",
             fits_it_shape(*make_pairing_protocol()) ? "yes (unexpected!)"
                                                     : "no (two-way only)"});
  t.print(std::cout);
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Figure 1: models and their relationships");
  ppfs::capability_matrix();
  ppfs::arrows_table();
  ppfs::native_computability();
  return 0;
}

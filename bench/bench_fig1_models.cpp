// FIG1 — regenerates Figure 1 of the paper: the interaction-model lattice.
//
//  Table 1: per-model capability matrix (the transition-relation
//           semantics of §2.2–2.3 in feature form).
//  Table 2: the hierarchy arrows, each mechanically verified on sampled
//           transition functions (specialization embeddings checked for
//           outcome-set equality, omission-avoidance/no-op embeddings for
//           the corresponding inclusion).
//  Table 3: native computability spot checks — what the weak models run
//           directly, without any simulator, as a declarative ScenarioGrid
//           over the one-way workload registry (OR/max/leader in IO, the
//           beacon protocol in IT), plus the shape check that two-way
//           tables like Pairing do not even fit the one-way form.
#include "bench_common.hpp"
#include "engine/native.hpp"
#include "protocols/oneway.hpp"
#include "protocols/pairing.hpp"

namespace ppfs {
namespace {

void capability_matrix() {
  bench::banner("FIG1 / Table 1: model capability matrix");
  TextTable t({"model", "one-way", "omissive", "starter acts",
               "starter detects om.", "reactor acts on om.",
               "reactor detects om."});
  for (Model m : kAllModels) {
    const ModelCaps c = model_caps(m);
    t.add_row({model_name(m), fmt_bool(c.one_way), fmt_bool(c.omissive),
               fmt_bool(c.starter_acts), fmt_bool(c.starter_detects_omission),
               fmt_bool(c.reactor_acts_on_omission),
               fmt_bool(c.reactor_detects_omission)});
  }
  t.print(std::cout);
}

void arrows_table() {
  bench::banner("FIG1 / Table 2: hierarchy arrows (machine-checked)");
  TextTable t({"arrow", "justification", "note", "verified(q=2..5)"});
  for (const ModelArrow& a : model_arrows()) {
    bool ok = true;
    for (std::size_t q = 2; q <= 5; ++q)
      ok = ok && verify_arrow(a, q, /*samples=*/50, /*seed=*/99 + q);
    t.add_row({model_name(a.src) + " -> " + model_name(a.dst),
               arrow_reason_name(a.reason), a.note, fmt_bool(ok)});
  }
  t.print(std::cout);
}

void native_computability() {
  bench::banner("FIG1 / Table 3: native computability in the weak models");
  exp::Report report;
  {
    // IO runs everything with g = id: or/max epidemics, leader election,
    // the cancellation majority standing in for exact majority.
    exp::ScenarioGrid g;
    g.workloads = {"or", "max", "leader", "exact-majority"};
    g.sizes = {16};
    g.models = {"IO"};
    g.engines = {"native"};
    g.trials = 4;
    g.seed = bench::bench_seed(1701);
    report.extend(bench::run_grid(g));
  }
  {
    // IT additionally admits non-identity g: the starter-side beacon.
    exp::ScenarioGrid g;
    g.workloads = {"beacon-or"};
    g.sizes = {16};
    g.models = {"IT"};
    g.engines = {"native"};
    g.trials = 4;
    g.seed = bench::bench_seed(1702);
    report.extend(bench::run_grid(g));
  }
  report.print_table(std::cout);
  std::cout << "\npairing fits the one-way transition shape? "
            << (fits_it_shape(*make_pairing_protocol()) ? "yes (unexpected!)"
                                                        : "no (two-way only)")
            << "\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Figure 1: models and their relationships");
  ppfs::capability_matrix();
  ppfs::arrows_table();
  ppfs::native_computability();
  return 0;
}

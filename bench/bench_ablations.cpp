// ABLATIONS — why each mechanism of the paper's simulators is load-bearing.
// Runs the faithful simulator and an ablated variant on identical scripts
// and prints what breaks (the experiments DESIGN.md's design-choice index
// calls for).
//
//  1. SKnO without joker-debt repayment ("Rummy" rule of §4.1): a joker
//     spent on a still-alive token is never reborn; the crippled run can
//     never complete — liveness lost under <= o omissions.
//  2. SID without the line-6 freshness guard (state_other == stateP,
//     Figure 3): locks against stale state copies double-spend producers —
//     safety lost and the halves unmatched.
//  3. Context: SKnO's >= 1-real-token rule. Under the budget assumption
//     live jokers never exceed o (mint <= omissions + conversions, each
//     conversion destroys a real), so an all-joker fabrication needs o+1
//     jokers at one agent and is unreachable; the rule is defensive depth
//     for budget-violating runs only. Measured: max live jokers stays
//     <= o across a long adversarial run.
#include "bench_common.hpp"
#include "protocols/pairing.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

void skno_debt_ablation() {
  bench::banner("Ablation 1: SKnO joker-debt repayment (liveness)");
  const auto st = pairing_states();
  const std::vector<State> init{st.producer, st.producer, st.consumer,
                                st.consumer};
  const std::vector<Interaction> script{
      {1, 2, true},  {0, 2, false}, {0, 2, false}, {1, 3, false},
      {2, 3, false}, {2, 3, false}, {2, 3, false},
  };
  TextTable t({"variant", "pairings completed", "target (min(c,p))",
               "live after 200k fair steps", "jokers reborn"});
  for (bool debt : {true, false}) {
    SknoSimulator::Options opt;
    opt.joker_debt = debt;
    SknoSimulator sim(make_pairing_protocol(), Model::I3, 1, init, opt);
    for (const auto& ia : script) sim.interact(ia);
    UniformScheduler sched(4);
    Rng rng(5);
    for (std::size_t i = 0; i < 200'000; ++i) sim.interact(sched.next(rng, i));
    std::size_t critical = 0;
    for (AgentId a = 0; a < 4; ++a)
      if (sim.simulated_state(a) == st.critical) ++critical;
    t.add_row({debt ? "faithful" : "no joker debt", std::to_string(critical), "2",
               critical == 2 ? "yes" : "NO — stuck forever",
               std::to_string(sim.stats().debt_conversions)});
  }
  t.print(std::cout);
}

void sid_guard_ablation() {
  bench::banner("Ablation 2: SID line-6 freshness guard (safety)");
  const auto st = pairing_states();
  const std::vector<Interaction> script{
      {1, 0, false}, {1, 2, false}, {2, 1, false}, {1, 2, false},
      {2, 1, false}, {0, 1, false}, {1, 0, false},
  };
  TextTable t(
      {"variant", "critical", "producers", "safety", "orphaned half-steps"});
  for (bool guard : {true, false}) {
    SidCore::Options opt;
    opt.guard_partner_state = guard;
    SidSimulator sim(make_pairing_protocol(), Model::IO,
                     {st.consumer, st.producer, st.consumer}, {}, opt);
    PairingMonitor mon(sim.projection());
    for (const auto& ia : script) {
      sim.interact(ia);
      mon.observe(sim.projection());
    }
    const auto rep = verify_simulation(sim, 0);
    t.add_row({guard ? "faithful" : "no freshness guard",
               std::to_string(mon.max_critical()),
               std::to_string(mon.producers()),
               mon.safety_violated() ? "VIOLATED" : "ok",
               std::to_string(rep.unmatched)});
  }
  t.print(std::cout);
}

void joker_headroom() {
  bench::banner("Context 3: live jokers never exceed the bound o");
  TextTable t({"o", "omissions spent", "max live jokers observed", "bound"});
  for (std::size_t o : {1, 2, 3}) {
    const std::size_t n = 8;
    const Workload w = core_workloads(n)[3];
    SknoSimulator sim(w.protocol, Model::I3, o, w.initial);
    auto sched = bench::budget_adversary(n, 0.1, o);
    Rng rng(77 + o);
    std::size_t max_live = 0;
    for (std::size_t i = 0; i < 150'000; ++i) {
      sim.interact(sched->next(rng, i));
      max_live = std::max(max_live, sim.live_jokers());
    }
    t.add_row({std::to_string(o), std::to_string(sim.omissions()),
               std::to_string(max_live), "<= " + std::to_string(o)});
  }
  t.print(std::cout);
  std::cout << "\nAn all-joker phantom run needs o+1 jokers at one agent, so "
               "under the budget assumption it cannot occur; the >=1-real "
               "rule guards runs that violate the assumption (where Theorem "
               "3.1 applies anyway).\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Design-choice ablations");
  ppfs::skno_debt_ablation();
  ppfs::sid_guard_ablation();
  ppfs::joker_headroom();
  return 0;
}

// PERF — one-way & omissive models in count space (the PR 2 tentpole).
//
// Measures uniform-scheduler interactions covered per second for native
// (per-agent) vs batch (count-space) execution of the same (model,
// adversary) triples through the EngineDispatch facade:
//
//   * IO or-epidemic and cancellation majority, plain and under a
//     Budget(1000) omission adversary;
//   * I2 or under a UO adversary (g = id makes every omissive draw a
//     no-op) in both burst regimes: burst=inf takes the O(1)-per-leap
//     geometric/binomial split, while the default burst cap of 8 runs the
//     exact within-burst Markov leg at O(1) per burst episode — honestly
//     slower, recorded separately; plus I2 beacon-or under UO
//     (non-identity g, omissive draws change counts: the event-punctuated
//     leap path — dense, so batch ~ native);
//   * T3 exact majority under a Budget adversary (two-way omissive);
//   * the headline: exact-majority-style convergence at n = 10^6 under
//     --model=IO --adversary=budget:1000, which the native engine cannot
//     finish in reasonable time.
//
// Run with --json (or PPFS_BENCH_JSON=1) to emit BENCH_engine_omissive.json
// for cross-PR tracking. Seeds honor the PPFS_SEED override.
#include <chrono>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "engine/batch/dispatch.hpp"
#include "protocols/registry.hpp"

namespace ppfs {
namespace {

using bench::bench_seed;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Case {
  std::string label;
  Model model;
  std::string workload;  // one-way registry prefix or "exact-majority" (T*)
  std::string adversary;
  std::size_t n;
  // Interactions to cover per engine. Sparse workloads (mostly no-ops
  // after convergence) let the batch engine cover billions; dense ones
  // (e.g. the beacon's phase flip changes counts on every interaction)
  // are measured over smaller budgets on both engines.
  std::size_t native_steps;
  std::size_t batch_steps;
};

// Drive `steps` interactions and return interactions/sec.
double measure(const std::string& kind, const Case& c, std::size_t steps) {
  EngineConfig config;
  config.model = c.model;
  const AdversaryParams adv = parse_adversary_spec(c.adversary);
  if (adv.rate > 0.0) config.adversary = adv;

  std::unique_ptr<Engine> engine;
  if (is_one_way(c.model)) {
    for (const OneWayWorkload& w : one_way_workloads(c.n)) {
      if (w.name.rfind(c.workload, 0) == 0) {
        engine = make_engine(kind, w.protocol, w.initial, config);
        break;
      }
    }
  } else {
    for (const Workload& w : standard_workloads(c.n)) {
      if (w.name.rfind(c.workload, 0) == 0) {
        engine = make_engine(kind, w.protocol, w.initial, config);
        break;
      }
    }
  }
  if (!engine) throw std::invalid_argument("bench: workload not found");

  UniformScheduler sched(c.n);
  Rng rng(bench_seed(17));
  const auto t0 = Clock::now();
  (void)run_engine_steps(*engine, sched, rng, steps);
  const double dt = seconds_since(t0);
  return static_cast<double>(steps) / (dt > 0 ? dt : 1e-9);
}

}  // namespace
}  // namespace ppfs

int main(int argc, char** argv) {
  using namespace ppfs;
  bench::JsonReport json("engine_omissive", argc, argv);
  bench::banner("one-way & omissive models: native vs batch (interactions/sec)");

  const std::vector<Case> cases = {
      {"IO or", Model::IO, "or", "none", 1'000'000, 2'000'000,
       2'000'000'000ULL},
      {"IO majority + budget:1000", Model::IO, "exact-majority",
       "budget:1000", 1'000'000, 2'000'000, 2'000'000'000ULL},
      {"I2 or + uo:0.1 burst=inf", Model::I2, "or", "uo:0.1:burst=inf",
       1'000'000, 2'000'000, 2'000'000'000ULL},
      {"I2 or + uo:0.1 burst=8", Model::I2, "or", "uo:0.1", 1'000'000,
       2'000'000, 200'000'000ULL},
      {"I2 beacon-or + uo:0.01 (dense)", Model::I2, "beacon-or", "uo:0.01",
       1'000'000, 2'000'000, 20'000'000},
      {"T3 exact-majority + budget:1000", Model::T3, "exact-majority",
       "budget:1000", 1'000'000, 2'000'000, 40'000'000'000ULL},
  };

  std::printf("%-36s %14s %14s %10s\n", "case", "native i/s", "batch i/s",
              "speedup");
  for (const Case& c : cases) {
    // The native engine pays O(1) per interaction: keep its sample small
    // and let the batch engine cover the full count.
    const double native_ips = measure("native", c, c.native_steps);
    const double batch_ips = measure("batch", c, c.batch_steps);
    std::printf("%-36s %14.3e %14.3e %9.0fx\n", c.label.c_str(), native_ips,
                batch_ips, batch_ips / native_ips);
    json.add(c.label + " [native]", c.n, model_name(c.model), native_ips);
    json.add(c.label + " [batch]", c.n, model_name(c.model), batch_ips);
  }

  // Dense acceptance (ROADMAP's speedup:dense-*): the round face behind
  // engine=auto vs the leap-only batch engine on the dense-omission cell.
  // Nearly every delivery fires here, so leaping covers one interaction
  // per draw while the round face processes a whole collision-free prefix
  // (E[len] ~ sqrt(pi n)/2) per O(q^2) batch. CI floor: >= 2.0.
  {
    const Case dense{"I2 beacon-or + uo:0.01 (dense)", Model::I2, "beacon-or",
                     "uo:0.01", 1'000'000, 0, 0};
    const std::size_t steps = 20'000'000;
    const double batch_ips = measure("batch", dense, steps);
    const double auto_ips = measure("auto", dense, steps);
    std::printf("%-36s %14.3e %14.3e %9.2fx  (floor 2.0)\n",
                "dense beacon-or: auto(round)/batch", batch_ips, auto_ips,
                auto_ips / batch_ips);
    json.add("dense-beacon-uo [batch]", dense.n, "I2", batch_ips);
    json.add("dense-beacon-uo [auto]", dense.n, "I2", auto_ips);
    json.add_ratio("speedup:dense-beacon-uo", dense.n, "I2",
                   auto_ips / batch_ips);
  }

  // Headline: run the IO cancellation majority to convergence at n = 10^6
  // under a Budget(1000) adversary — the acceptance-criterion workload.
  {
    const std::size_t n = 1'000'000;
    EngineConfig config;
    config.model = Model::IO;
    config.adversary = parse_adversary_spec("budget:1000");
    for (const OneWayWorkload& w : one_way_workloads(n)) {
      if (w.name.rfind("exact-majority", 0) != 0) continue;
      auto engine = make_engine("batch", w.protocol, w.initial, config);
      UniformScheduler sched(n);
      Rng rng(bench_seed(23));
      auto conv = w.converged;
      CountsProbe probe = [conv](const std::vector<std::size_t>& counts,
                                 const Protocol&) { return conv(counts); };
      RunOptions opt;
      opt.max_steps = 1'000'000'000'000'000ULL;
      opt.check_every = 1u << 22;
      const auto t0 = Clock::now();
      const RunResult res = run_engine_until(*engine, sched, rng, probe, opt);
      const double dt = seconds_since(t0);
      std::printf(
          "\nconvergence: %s under I1(lifted IO)+budget:1000 at n=10^6: "
          "%s after %.3e interactions (%zu omissions) in %.2fs "
          "(%.3e i/s)\n",
          w.name.c_str(), res.converged ? "converged" : "DID NOT CONVERGE",
          static_cast<double>(res.steps), res.omissions, dt,
          static_cast<double>(res.steps) / (dt > 0 ? dt : 1e-9));
      json.add("IO majority budget:1000 converge [batch]", n, "IO",
               static_cast<double>(res.steps) / (dt > 0 ? dt : 1e-9));
    }
  }
  return 0;
}

// PERF — count-based batch engine (src/engine/batch/). Measures:
//   * steady-state advance() throughput on the registry's hot protocols,
//     in uniform-scheduler interactions covered per second (the same unit
//     the native engine counts one table lookup at a time);
//   * time to drive the exact-majority protocol from its initial
//     configuration to silence (no count-changing pair left) — a run the
//     native engine cannot finish at n = 10^6 in reasonable time;
//   * the exact per-interaction hypergeometric step (small-n fallback);
//   * both engines behind the EngineDispatch facade, which is what
//     runner/stats/trace-driven callers actually pay.
// Seeds honor the PPFS_SEED environment override (bench_common.hpp).
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_common.hpp"
#include "engine/batch/batch_system.hpp"
#include "engine/batch/dispatch.hpp"
#include "protocols/logic.hpp"
#include "protocols/majority.hpp"

namespace ppfs {
namespace {

using bench::bench_seed;

Configuration majority_config(std::size_t n, std::size_t margin = 1) {
  auto p = make_exact_majority();
  const auto st = exact_majority_states();
  std::vector<std::size_t> counts(p->num_states(), 0);
  counts[st.big_x] = n / 2 + margin;
  counts[st.big_y] = n - counts[st.big_x];
  return Configuration(p, counts);
}

Configuration or_config(std::size_t n) {
  auto p = make_or_protocol();
  return Configuration(p, {n - 1, 1});
}

void BM_BatchAdvanceMajority(benchmark::State& state) {
  BatchSystem sys(majority_config(static_cast<std::size_t>(state.range(0))));
  Rng rng(bench_seed(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.advance(1 << 20, rng).interactions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sys.steps()));
}
BENCHMARK(BM_BatchAdvanceMajority)->Arg(10'000)->Arg(1'000'000)->Arg(100'000'000);

void BM_BatchAdvanceOrEpidemic(benchmark::State& state) {
  BatchSystem sys(or_config(static_cast<std::size_t>(state.range(0))));
  Rng rng(bench_seed(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.advance(1 << 20, rng).interactions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sys.steps()));
}
BENCHMARK(BM_BatchAdvanceOrEpidemic)->Arg(1'000'000);

// Fresh run to silence each iteration: the "simulate a million-agent
// population to convergence" workload the subsystem exists for.
void BM_BatchConvergeMajority(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t salt = 0;
  std::size_t covered = 0;
  for (auto _ : state) {
    // 51/49 split: a realistic margin that keeps the cancellation phase
    // from degenerating into a margin-1 random walk.
    BatchSystem sys(majority_config(n, std::max<std::size_t>(1, n / 100)));
    Rng rng(bench_seed(3) + salt++);
    while (!sys.silent()) (void)sys.advance(static_cast<std::size_t>(-1), rng);
    covered += sys.steps();
    benchmark::DoNotOptimize(sys.consensus_output());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(covered));
}
BENCHMARK(BM_BatchConvergeMajority)->Arg(10'000)->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_BatchExactStep(benchmark::State& state) {
  BatchSystem sys(majority_config(static_cast<std::size_t>(state.range(0))));
  Rng rng(bench_seed(4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.step(rng).interactions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BatchExactStep)->Arg(100)->Arg(1'000'000);

void BM_DispatchAdvance(benchmark::State& state) {
  const bool batch = state.range(0) != 0;
  const auto n = static_cast<std::size_t>(state.range(1));
  const Configuration conf = majority_config(n);
  auto engine = make_engine(batch ? "batch" : "native", conf.protocol_ptr(),
                            conf.to_population().states());
  UniformScheduler sched(n);
  Rng rng(bench_seed(5));
  std::size_t covered = 0;
  for (auto _ : state) {
    covered += engine->advance(1 << 14, sched, rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(covered));
  state.SetLabel(engine->kind());
}
BENCHMARK(BM_DispatchAdvance)
    ->Args({0, 1'000'000})
    ->Args({1, 1'000'000});

}  // namespace
}  // namespace ppfs

BENCHMARK_MAIN();

// bench_sim_batch — step-wise vs count-space SIMULATOR throughput through
// the make_sim_engine facade (engine/batch/sim_batch_system.hpp): the §4
// simulators executed as open-universe protocols over interned wrapper
// states.
//
// What to expect (and what the rows honestly show):
//   * naive at n = 10^6: the wrapper adds no state, so the count-space
//     engine leaps no-op oceans exactly like the bare batch engine —
//     >= 10^2x step-wise throughput by orders of magnitude (the
//     acceptance row; in practice >= 10^4x).
//   * SKnO at n = 10^6: nearly every delivery moves a token, so there is
//     almost nothing to leap — throughput is bounded by the per-fire
//     successor computation. The delta path (per-state g memo, (token,
//     reactor) receive cache, byte-patched interning) makes a fire touch
//     only the bytes that change: >= 10x step-wise over the acceptance
//     window (the first 5*10^5 interactions, where wrapper states
//     collapse onto a few thousand ids). The advantage honestly erodes as
//     the token economy disperses — queues lengthen, the live universe
//     grows toward ~n/20 and beyond, receive-cache compulsory misses pay
//     decode+intern — so a second, untargeted "sustained" row records the
//     2*10^6-interaction average for the trajectory record.
//   * SKnO at n = 10^2 to convergence: the paper-scale regime; the
//     simulated-projection probe stabilizes on both engines.
//   * SID at n = 4096: the pairing chain fires at rate ~1/n but its
//     states embed partner identities, so the universe holds >= n states
//     and count space degenerates gracefully to direct stepping.
//
// Usage: bench_sim_batch [--json]     (PPFS_SEED honored)
//   --json writes BENCH_sim_batch.json with one row per (engine,
//   workload) pair plus speedup:<workload> rows carrying the
//   batch/step-wise ratio under the dimensionless "speedup" key
//   (bench::JsonReport::add_ratio).
#include <chrono>
#include <iomanip>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "engine/batch/dispatch.hpp"
#include "protocols/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace ppfs;

struct Lane {
  double ips = 0.0;           // scheduler interactions covered per second
  std::size_t interactions = 0;
  bool converged = false;
  std::size_t live = 0;  // interned wrapper states (batch lanes only)
};

Workload find_workload(const std::string& name, std::size_t n) {
  for (Workload& w : standard_workloads(n)) {
    if (w.name.rfind(name, 0) == 0) return w;
  }
  throw std::invalid_argument("bench_sim_batch: unknown workload " + name);
}

// Drive `budget` interactions (or to convergence when `to_convergence`)
// and report covered-interactions/sec.
Lane run_lane(const std::string& kind, const std::string& spec,
              const std::string& workload, std::size_t n, std::size_t budget,
              bool to_convergence, std::uint64_t seed) {
  const Workload w = find_workload(workload, n);
  SimEngineConfig config;
  config.spec = parse_sim_spec(spec);
  auto engine = make_sim_engine(kind, w.protocol, w.initial, config);
  UniformScheduler sched(n);
  Rng rng(seed);
  Lane lane;
  const auto t0 = std::chrono::steady_clock::now();
  if (to_convergence) {
    RunOptions opt;
    opt.max_steps = budget;
    opt.check_every = 1u << 18;
    const RunResult res =
        run_engine_until(*engine, sched, rng, workload_counts_probe(w), opt);
    lane.converged = res.converged;
  } else {
    (void)run_engine_steps(*engine, sched, rng, budget);
  }
  const double dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  lane.interactions = engine->interactions();
  lane.live = engine->universe_live();
  lane.ips = dt > 0.0 ? static_cast<double>(lane.interactions) / dt : 0.0;
  return lane;
}

}  // namespace

int main(int argc, char** argv) {
  using ppfs::bench::JsonReport;
  const std::uint64_t seed = ppfs::bench::bench_seed(20260730);
  JsonReport json("sim_batch", argc, argv);

  struct Case {
    const char* label;
    const char* spec;
    const char* model;  // display only
    const char* workload;
    std::size_t n;
    std::size_t stepwise_budget;  // fixed-interaction budget, step-wise lane
    std::size_t batch_budget;     // budget (or max_steps) for the batch lane
    bool to_convergence;          // batch lane runs the convergence probe
  };
  const Case cases[] = {
      // The acceptance row: wrapper-free simulator at n = 10^6; the batch
      // lane runs the margin-2 exact majority all the way to the simulated
      // convergence probe, leaping the Theta(n^2)-scale no-op ocean.
      {"naive-em-1M", "naive", "TW", "exact-majority(", 1'000'000, 4'000'000,
       20'000'000'000'000ULL, true},
      // SKnO at n = 10^6 over the acceptance window (both lanes cover the
      // SAME first 5*10^5 interactions): the regime where wrapper states
      // collapse, which the delta/cache hot path turns into a >= 10x win.
      {"skno-o8-gap-1M", "skno:o=8", "I3", "exact-majority-gap", 1'000'000,
       500'000, 500'000, false},
      // The same workload over a 4x longer window: records how the
      // advantage decays as the token economy disperses the universe (no
      // speedup target on this row — it is the honest sustained number).
      {"skno-o8-gap-1M-sustained", "skno:o=8", "I3", "exact-majority-gap",
       1'000'000, 2'000'000, 2'000'000, false},
      // Paper-scale SKnO to convergence on the simulated projection (the
      // step-wise lane stays a fixed-budget throughput probe).
      {"skno-o2-gap-50", "skno:o=2", "I3", "exact-majority-gap", 50,
       4'000'000, 40'000'000, true},
      // SID: >= n live wrapper states (partner identities), direct-step
      // degeneration.
      {"sid-gap-4096", "sid", "IO", "exact-majority-gap", 4096, 2'000'000,
       2'000'000, false},
  };

  ppfs::bench::banner("simulators: step-wise vs count-space (make_sim_engine)");
  ppfs::TextTable table({"case", "n", "stepwise int/s", "batch int/s", "speedup",
                     "batch live states", "batch converged"});
  for (const Case& c : cases) {
    const Lane stepwise = run_lane("native", c.spec, c.workload, c.n,
                                   c.stepwise_budget, false, seed);
    const Lane batch = run_lane("batch", c.spec, c.workload, c.n,
                                c.batch_budget, c.to_convergence, seed + 1);
    const double speedup = stepwise.ips > 0.0 ? batch.ips / stepwise.ips : 0.0;
    table.add_row({c.label, std::to_string(c.n),
                   ppfs::fmt_double(stepwise.ips),
                   ppfs::fmt_double(batch.ips),
                   ppfs::fmt_double(speedup),
                   std::to_string(batch.live),
                   c.to_convergence ? (batch.converged ? "yes" : "NO") : "n/a"});
    json.add(std::string("stepwise-sim:") + c.label, c.n, c.model, stepwise.ips);
    json.add(std::string("batch-sim:") + c.label, c.n, c.model, batch.ips);
    json.add_ratio(std::string("speedup:") + c.label, c.n, c.model, speedup);
  }
  table.print(std::cout);
  std::cout << "\nspeedup rows carry batch/step-wise covered-interaction "
               "ratios; naive (>= 10^2x) and skno-o8-gap-1M (>= 10x over "
               "the acceptance window) are the acceptance cases, the "
               "sustained/SID rows honestly show the decay where wrapper "
               "churn disperses the universe.\n";
  return 0;
}

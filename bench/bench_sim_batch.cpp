// bench_sim_batch — step-wise vs count-space/adaptive SIMULATOR throughput
// through the make_sim_engine facade (engine/batch/sim_batch_system.hpp,
// engine/batch/dispatch.cpp): the §4 simulators executed as open-universe
// protocols over interned wrapper states, and engine=auto choosing between
// count space and the direct agent-space driver per run regime.
//
// What to expect (and what the rows honestly show):
//   * naive at n = 10^6: the wrapper adds no state, so the count-space
//     engine leaps no-op oceans exactly like the bare batch engine —
//     >= 10^2x step-wise throughput by orders of magnitude (the
//     acceptance row; in practice >= 10^4x).
//   * SKnO at n = 10^6 (pure count-space rows): nearly every delivery
//     moves a token, so there is almost nothing to leap — throughput is
//     bounded by the per-fire successor computation. The delta path
//     (per-state g memo, (token, reactor) receive cache, byte-patched
//     interning) makes a fire touch only the bytes that change: >= 10x
//     step-wise over the acceptance window (the first 5*10^5 interactions,
//     where wrapper states collapse onto a few thousand ids). The
//     advantage honestly erodes as the token economy disperses — the
//     "sustained" row records the 2*10^6-interaction average.
//   * SID/naming at n = 4096 (engine=auto rows): their states embed
//     partner identities, so the universe holds >= n states and pure count
//     space LOSES to stepping (historically 0.019x on SID, 0.2x on
//     naming). auto reads the dispersion — and for naming, whose universe
//     stays collapsed while fires dominate, the windowed fire fraction
//     against the source's fire-cost ratio — and runs these in agent
//     space; the acceptance contract is speedup >= 1.0, i.e. never
//     materially slower than the best fixed engine. naming additionally
//     exercises the mid-run count -> agent switch (it starts collapsed,
//     everyone my_id = 1, and switches once the fire signal reads).
//   * SKnO at n = 50 to convergence under auto: the paper-scale regime
//     where count space pays index machinery per interaction for nothing;
//     auto's dispersion signal sends it to agent space.
//
// Usage: bench_sim_batch [--json]     (PPFS_SEED honored)
//   --json writes BENCH_sim_batch.json with one row per (engine,
//   workload) pair plus speedup:<workload> rows carrying the
//   fast-lane/step-wise ratio under the dimensionless "speedup" key
//   (bench::JsonReport::add_ratio). engine=auto rows also record the
//   representation the run finished in (engine:<case> rows, agent_space
//   1/0).
#include <chrono>
#include <iomanip>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "engine/batch/dispatch.hpp"
#include "protocols/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace ppfs;

struct Lane {
  double ips = 0.0;           // scheduler interactions covered per second
  std::size_t interactions = 0;
  bool converged = false;
  std::size_t live = 0;   // interned/distinct wrapper states (fast lanes)
  std::string active;     // final active_kind() — "agent"/"count" for auto
};

Workload find_workload(const std::string& name, std::size_t n) {
  for (Workload& w : standard_workloads(n)) {
    if (w.name.rfind(name, 0) == 0) return w;
  }
  throw std::invalid_argument("bench_sim_batch: unknown workload " + name);
}

// Drive `budget` interactions (or to convergence when `to_convergence`)
// and report covered-interactions/sec.
Lane run_lane(const std::string& kind, const std::string& spec,
              const std::string& workload, std::size_t n, std::size_t budget,
              bool to_convergence, std::uint64_t seed) {
  const Workload w = find_workload(workload, n);
  SimEngineConfig config;
  config.spec = parse_sim_spec(spec);
  auto engine = make_sim_engine(kind, w.protocol, w.initial, config);
  UniformScheduler sched(n);
  Rng rng(seed);
  Lane lane;
  const auto t0 = std::chrono::steady_clock::now();
  if (to_convergence) {
    RunOptions opt;
    opt.max_steps = budget;
    opt.check_every = 1u << 18;
    const RunResult res =
        run_engine_until(*engine, sched, rng, workload_counts_probe(w), opt);
    lane.converged = res.converged;
  } else {
    (void)run_engine_steps(*engine, sched, rng, budget);
  }
  const double dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  lane.interactions = engine->interactions();
  lane.live = engine->universe_live();
  lane.active = engine->active_kind();
  lane.ips = dt > 0.0 ? static_cast<double>(lane.interactions) / dt : 0.0;
  return lane;
}

}  // namespace

int main(int argc, char** argv) {
  using ppfs::bench::JsonReport;
  const std::uint64_t seed = ppfs::bench::bench_seed(20260730);
  JsonReport json("sim_batch", argc, argv);

  struct Case {
    const char* label;
    const char* engine;  // fast lane: "batch" (pure count space) or "auto"
    const char* spec;
    const char* model;  // display only
    const char* workload;
    std::size_t n;
    std::size_t stepwise_budget;  // fixed-interaction budget, step-wise lane
    std::size_t fast_budget;      // budget (or max_steps) for the fast lane
    bool to_convergence;          // fast lane runs the convergence probe
  };
  const Case cases[] = {
      // The acceptance row: wrapper-free simulator at n = 10^6; the batch
      // lane runs the margin-2 exact majority all the way to the simulated
      // convergence probe, leaping the Theta(n^2)-scale no-op ocean.
      {"naive-em-1M", "batch", "naive", "TW", "exact-majority(", 1'000'000,
       4'000'000, 20'000'000'000'000ULL, true},
      // SKnO at n = 10^6 over the acceptance window (both lanes cover the
      // SAME first 5*10^5 interactions): the regime where wrapper states
      // collapse, which the delta/cache hot path turns into a >= 10x win.
      // Kept on the fixed batch engine — the honest pure-count rows.
      {"skno-o8-gap-1M", "batch", "skno:o=8", "I3", "exact-majority-gap",
       1'000'000, 500'000, 500'000, false},
      // The same workload over a 4x longer window: records how the
      // advantage decays as the token economy disperses the universe (no
      // speedup target on this row — it is the honest sustained number).
      {"skno-o8-gap-1M-sustained", "batch", "skno:o=8", "I3",
       "exact-majority-gap", 1'000'000, 2'000'000, 2'000'000, false},
      // The same dense window under engine=auto (the PR 8 dense-regime
      // guard): SKnO mid-convergence is fire-heavy with a collapsed
      // universe, the mislead-prone cell for the monitor's measured
      // fire-cost estimate — auto must stay at least as fast as stepping
      // (CI floor on speedup:dense-skno-auto: >= 1.0).
      {"dense-skno-auto", "auto", "skno:o=8", "I3", "exact-majority-gap",
       1'000'000, 500'000, 500'000, false},
      // Paper-scale SKnO to convergence on the simulated projection, under
      // auto: at n = 50 the universe disperses to ~1 state per agent and
      // the monitor sends the run to agent space (pure count space
      // historically ran this at 0.26x step-wise).
      {"skno-o2-gap-50", "auto", "skno:o=2", "I3", "exact-majority-gap", 50,
       4'000'000, 40'000'000, true},
      // SID under auto: dispersion is 1.0 from step 0 (states embed
      // partner identities), so auto runs agent space outright. The
      // acceptance contract on the speedup row is >= 1.0 — never
      // materially slower than the best fixed engine (pure count space
      // was 0.019x here).
      {"sid-gap-4096", "auto", "sid", "IO", "exact-majority-gap", 4096,
       2'000'000, 2'000'000, false},
      {"sid-gap-4096-sustained", "auto", "sid", "IO", "exact-majority-gap",
       4096, 8'000'000, 8'000'000, false},
      // Naming under auto: starts collapsed (everyone my_id = 1, count
      // space favored), disperses as ids spread — the natural mid-run
      // count -> agent switch, benched over the same honest window pair.
      {"naming-gap-4096", "auto", "naming", "IO", "exact-majority-gap", 4096,
       1'000'000, 1'000'000, false},
      {"naming-gap-4096-sustained", "auto", "naming", "IO",
       "exact-majority-gap", 4096, 4'000'000, 4'000'000, false},
  };

  ppfs::bench::banner(
      "simulators: step-wise vs count-space/auto (make_sim_engine)");
  ppfs::TextTable table({"case", "engine", "n", "stepwise int/s",
                         "fast int/s", "speedup", "live states", "converged"});
  for (const Case& c : cases) {
    std::cerr << "[bench] " << c.label << ": stepwise lane...\n";
    const Lane stepwise = run_lane("native", c.spec, c.workload, c.n,
                                   c.stepwise_budget, false, seed);
    std::cerr << "[bench] " << c.label << ": " << c.engine << " lane...\n";
    const Lane fast = run_lane(c.engine, c.spec, c.workload, c.n,
                               c.fast_budget, c.to_convergence, seed + 1);
    const double speedup = stepwise.ips > 0.0 ? fast.ips / stepwise.ips : 0.0;
    const bool is_auto = std::string(c.engine) == "auto";
    const std::string engine_col =
        is_auto ? std::string("auto/") + fast.active : c.engine;
    table.add_row({c.label, engine_col, std::to_string(c.n),
                   ppfs::fmt_double(stepwise.ips),
                   ppfs::fmt_double(fast.ips),
                   ppfs::fmt_double(speedup),
                   std::to_string(fast.live),
                   c.to_convergence ? (fast.converged ? "yes" : "NO") : "n/a"});
    json.add(std::string("stepwise-sim:") + c.label, c.n, c.model, stepwise.ips);
    json.add(std::string(c.engine) + "-sim:" + c.label, c.n, c.model, fast.ips);
    json.add_ratio(std::string("speedup:") + c.label, c.n, c.model, speedup);
    if (is_auto)
      json.add_metric(std::string("engine:") + c.label, c.n, c.model,
                      "agent_space", fast.active == "agent" ? 1.0 : 0.0);
  }
  table.print(std::cout);
  std::cout << "\nspeedup rows carry fast-lane/step-wise covered-interaction "
               "ratios; naive (>= 10^2x) and skno-o8-gap-1M (>= 10x over the "
               "acceptance window) are the count-space acceptance cases, the "
               "sustained rows honestly show the decay where wrapper churn "
               "disperses the universe, and the engine=auto rows (sid/naming/"
               "skno@50) carry the adaptive contract: speedup >= 1.0, never "
               "materially slower than the best fixed engine.\n";
  return 0;
}

// THM45 — regenerates Theorem 4.5 (the SID simulator of Figure 3): with
// unique IDs, simulation works in IO — and, because every update is
// reactor-side and omissions are global no-ops, in ALL ten models, under
// the unrestricted (malignant) UO adversary.
//
// Every table is a declarative ScenarioGrid run by the experiment layer;
// matching verification and the rollback counter ride along as report
// extras.
//
//  Table 1: workload sweep in IO (fault-free weakest model).
//  Table 2: the full model sweep under UO omissions at 30% rate.
//  Table 3: overhead and rollback rate vs n.
#include "bench_common.hpp"

namespace ppfs {
namespace {

void workload_table() {
  bench::banner("THM 4.5 / Table 1: SID over the workload suite in IO, n=8");
  exp::ScenarioGrid g;
  g.workloads = bench::workload_names(standard_workloads(8));
  g.sizes = {8};
  g.models = {"IO"};
  g.sims = {"sid"};
  g.engines = {"native"};
  g.verify_matching = true;
  g.max_unmatched_per_n = 2;  // SID/naming hold the tighter historical bar
  g.max_steps = 2'000'000;
  g.trials = 4;
  g.seed = bench::bench_seed(4501);
  bench::run_grid(g).print_table(std::cout);
}

void model_sweep() {
  bench::banner(
      "THM 4.5 / Table 2: SID under every model, UO adversary at rate 0.3");
  exp::Report report;
  for (const Model model : kAllModels) {
    exp::ScenarioGrid g;
    g.workloads = {"exact-majority"};
    g.sizes = {8};
    g.models = {model_name(model)};
    g.adversaries = {is_omissive(model) ? "uo:0.3" : "none"};
    g.sims = {"sid"};
    g.engines = {"native"};
    g.verify_matching = true;
    g.max_unmatched_per_n = 2;  // SID/naming hold the tighter historical bar
    g.max_steps = 2'000'000;
    g.trials = 4;
    g.seed = bench::bench_seed(4502);
    report.extend(bench::run_grid(g));
  }
  report.print_table(std::cout);
  std::cout << "\nThe entire IDs column of Figure 4 is green: omissions are "
               "no-ops for a reactor-side-only protocol, so even the "
               "malignant UO adversary only slows SID down.\n";
}

void overhead_table() {
  bench::banner("THM 4.5 / Table 3: overhead and rollbacks vs n (IO, pairing)");
  exp::ScenarioGrid g;
  g.workloads = {"pairing"};
  g.sizes = {4, 8, 16, 32, 64};
  g.models = {"IO"};
  g.sims = {"sid"};
  g.engines = {"native"};
  g.verify_matching = true;
  g.max_unmatched_per_n = 2;  // SID/naming hold the tighter historical bar
  g.max_steps = 4'000'000;
  g.trials = 2;
  g.seed = bench::bench_seed(4503);
  bench::run_grid(g).print_table(std::cout);
  std::cout << "\nShape to observe: overhead grows with n — the lock "
               "handshake costs ~3 targeted observations, and the uniform "
               "scheduler needs Theta(n^2) interactions to deliver each.\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Theorem 4.5 (SID with unique IDs)");
  ppfs::workload_table();
  ppfs::model_sweep();
  ppfs::overhead_table();
  return 0;
}

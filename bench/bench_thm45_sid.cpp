// THM45 — regenerates Theorem 4.5 (the SID simulator of Figure 3): with
// unique IDs, simulation works in IO — and, because every update is
// reactor-side and omissions are global no-ops, in ALL ten models, under
// the unrestricted (malignant) UO adversary.
//
//  Table 1: workload sweep in IO (fault-free weakest model).
//  Table 2: the full model sweep under UO omissions at 30% rate.
//  Table 3: overhead and rollback rate vs n.
#include "bench_common.hpp"
#include "sim/sid.hpp"

namespace ppfs {
namespace {

void workload_table() {
  bench::banner("THM 4.5 / Table 1: SID over the workload suite in IO, n=8");
  TextTable t({"workload", "converged", "interactions", "sim pairs", "overhead",
               "matching"});
  const std::size_t n = 8;
  for (const Workload& w : standard_workloads(n)) {
    SidSimulator sim(w.protocol, Model::IO, w.initial);
    UniformScheduler sched(n);
    Rng rng(4501);
    RunOptions opt;
    opt.max_steps = 2'000'000;
    const auto m = bench::measure_simulation(sim, w, sched, rng, opt, 2 * n);
    t.add_row({w.name, fmt_bool(m.converged), std::to_string(m.interactions),
               std::to_string(m.simulated_pairs), fmt_double(m.overhead, 1),
               m.matching_ok ? "ok" : "FAILED"});
  }
  t.print(std::cout);
}

void model_sweep() {
  bench::banner(
      "THM 4.5 / Table 2: SID under every model, UO adversary at rate 0.3");
  TextTable t({"model", "converged", "interactions", "omissions", "sim pairs",
               "matching"});
  const std::size_t n = 8;
  for (Model model : kAllModels) {
    const Workload w = core_workloads(n)[1];  // exact majority
    SidSimulator sim(w.protocol, model, w.initial);
    std::unique_ptr<Scheduler> sched =
        is_omissive(model) ? bench::uo_adversary(n, 0.3)
                           : std::make_unique<UniformScheduler>(n);
    Rng rng(4502);
    RunOptions opt;
    opt.max_steps = 2'000'000;
    const auto m = bench::measure_simulation(sim, w, *sched, rng, opt, 2 * n);
    t.add_row({model_name(model), fmt_bool(m.converged),
               std::to_string(m.interactions), std::to_string(m.omissions),
               std::to_string(m.simulated_pairs),
               m.matching_ok ? "ok" : "FAILED"});
  }
  t.print(std::cout);
  std::cout << "\nThe entire IDs column of Figure 4 is green: omissions are "
               "no-ops for a reactor-side-only protocol, so even the "
               "malignant UO adversary only slows SID down.\n";
}

void overhead_table() {
  bench::banner("THM 4.5 / Table 3: overhead and rollbacks vs n (IO, pairing)");
  TextTable t({"n", "overhead", "sim pairs", "rollbacks", "rollbacks/pair"});
  for (std::size_t n : {4, 8, 16, 32, 64}) {
    const Workload w = core_workloads(n)[3];
    SidSimulator sim(w.protocol, Model::IO, w.initial);
    UniformScheduler sched(n);
    Rng rng(4503 + n);
    RunOptions opt;
    opt.max_steps = 4'000'000;
    const auto m = bench::measure_simulation(sim, w, sched, rng, opt, 2 * n);
    const auto& st = sim.stats();
    t.add_row({std::to_string(n), m.converged ? fmt_double(m.overhead, 1) : "no-conv",
               std::to_string(m.simulated_pairs), std::to_string(st.rollbacks),
               m.simulated_pairs
                   ? fmt_double(static_cast<double>(st.rollbacks) /
                                    static_cast<double>(m.simulated_pairs),
                                2)
                   : "-"});
  }
  t.print(std::cout);
  std::cout << "\nShape to observe: overhead grows with n — the lock "
               "handshake costs ~3 targeted observations, and the uniform "
               "scheduler needs Theta(n^2) interactions to deliver each.\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Theorem 4.5 (SID with unique IDs)");
  ppfs::workload_table();
  ppfs::model_sweep();
  ppfs::overhead_table();
  return 0;
}

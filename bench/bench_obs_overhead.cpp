// bench_obs_overhead — cost of the observability layer on the hottest
// path we have: the SKnO count-space engine over its acceptance window
// (the same skno-o8-gap-1M configuration bench_sim_batch reports).
//
// Two lanes through ONE binary (metrics compiled in, PPFS_METRICS=1):
//   * off: no registry attached — every hook is a null-check, the
//     shipping default;
//   * on:  enable_metrics() + a FlightRecorder at a 2^16-interaction
//     cadence — the full telemetry stack the CLI's --metrics-out drives.
//
// The ratio on/off is the runtime-attach overhead. The compile-time story
// (PPFS_METRICS=0 erases the hooks entirely) is covered by the OFF-build
// equivalence job in CI, not here. Acceptance: speedup:obs-overhead
// >= 0.95, i.e. attached telemetry costs at most ~5% on the worst-case
// hot path. Lanes run identical interaction windows from identical seeds
// (instrumentation never consumes Rng draws), best-of-3, interleaved so
// neither lane owns the warm cache.
//
// Usage: bench_obs_overhead [--json]     (PPFS_SEED honored)
//   --json writes BENCH_obs_overhead.json with both lane rates and the
//   speedup:obs-overhead ratio row.
#include <chrono>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "engine/batch/dispatch.hpp"
#include "obs/flight_recorder.hpp"
#include "protocols/registry.hpp"
#include "util/table.hpp"

namespace {

using namespace ppfs;

constexpr std::size_t kN = 1'000'000;
constexpr std::size_t kWindow = 500'000;  // the SKnO acceptance window
constexpr int kReps = 3;

Workload find_workload(std::size_t n) {
  for (Workload& w : standard_workloads(n)) {
    if (w.name.rfind("exact-majority-gap", 0) == 0) return w;
  }
  throw std::invalid_argument("bench_obs_overhead: no exact-majority-gap");
}

// One timed window; `with_metrics` attaches the registry + recorder.
double run_lane(const Workload& w, bool with_metrics, std::uint64_t seed) {
  SimEngineConfig config;
  config.spec = parse_sim_spec("skno:o=8");
  auto engine = make_sim_engine("batch", w.protocol, w.initial, config);
  obs::FlightRecorder recorder(
      {.every = std::uint64_t{1} << 16, .top_k = 8});
  if (with_metrics) engine->enable_metrics();
  UniformScheduler sched(kN);
  Rng rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  (void)run_engine_steps(*engine, sched, rng, kWindow,
                         with_metrics ? &recorder : nullptr);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return dt > 0.0 ? static_cast<double>(engine->interactions()) / dt : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using ppfs::bench::JsonReport;
  const std::uint64_t seed = ppfs::bench::bench_seed(20260730);
  JsonReport json("obs_overhead", argc, argv);

  const Workload w = find_workload(kN);

  ppfs::bench::banner("observability overhead: metrics attached vs detached");
  double best_off = 0.0;
  double best_on = 0.0;
  // Interleaved best-of-N: rep r runs off then on, both from the same
  // seed, so page cache and frequency scaling hit both lanes alike.
  for (int r = 0; r < kReps; ++r) {
    best_off = std::max(best_off, run_lane(w, false, seed + r));
    best_on = std::max(best_on, run_lane(w, true, seed + r));
  }
  const double ratio = best_off > 0.0 ? best_on / best_off : 0.0;

  ppfs::TextTable table({"lane", "n", "int/s"});
  table.add_row({"metrics off (detached)", std::to_string(kN),
                 ppfs::fmt_double(best_off)});
  table.add_row({"metrics on (registry+recorder)", std::to_string(kN),
                 ppfs::fmt_double(best_on)});
  table.print(std::cout);
  std::cout << "\nspeedup:obs-overhead = " << ppfs::fmt_double(ratio, 4)
            << "  (acceptance: >= 0.95 — attached telemetry costs at most "
               "~5% on the SKnO hot path)\n";

  json.add("obs-off:skno-o8-gap-1M", kN, "I3", best_off);
  json.add("obs-on:skno-o8-gap-1M", kN, "I3", best_on);
  json.add_ratio("speedup:obs-overhead", kN, "I3", ratio);
  return 0;
}

// PERF — raw engine and simulator throughput (google-benchmark). The
// reproduction hint for this paper is "simple scheduler loop, fast
// large-population runs": the native two-way engine must sustain tens of
// millions of interactions per second up to n = 10^6 agents, and the
// simulators should be within a small constant factor at fixed n.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "engine/batch/batch_system.hpp"
#include "engine/native.hpp"
#include "protocols/majority.hpp"
#include "protocols/oneway.hpp"
#include "sched/scheduler.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "util/rng.hpp"

namespace ppfs {
namespace {

using bench::bench_seed;

void BM_NativeTwoWay(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto st = exact_majority_states();
  std::vector<State> init(n);
  for (std::size_t i = 0; i < n; ++i)
    init[i] = i % 2 == 0 ? st.big_x : st.big_y;
  NativeSystem sys(make_exact_majority(), init);
  UniformScheduler sched(n);
  Rng rng(bench_seed(1));
  std::size_t step = 0;
  for (auto _ : state) {
    sys.interact(sched.next(rng, step++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NativeTwoWay)->Arg(100)->Arg(10'000)->Arg(1'000'000);

// The acceptance bar for the batch subsystem: on the exact-majority
// protocol at n = 10^6 the count-based engine must clear >= 10x the native
// engine's interactions/sec (items are uniform-scheduler interactions
// covered, including no-op runs the batch path leaps over — the same unit
// BM_NativeTwoWay counts one at a time).
void BM_BatchTwoWay(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto st = exact_majority_states();
  auto p = make_exact_majority();
  std::vector<std::size_t> counts(p->num_states(), 0);
  counts[st.big_x] = n / 2 + 1;
  counts[st.big_y] = n - counts[st.big_x];
  BatchSystem sys(Configuration(p, counts));
  Rng rng(bench_seed(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.advance(1 << 20, rng).interactions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(sys.steps()));
}
BENCHMARK(BM_BatchTwoWay)->Arg(100)->Arg(10'000)->Arg(1'000'000);

void BM_OneWayNative(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<State> init(n, 0);
  init[0] = 1;
  OneWaySystem sys(make_io_or(), Model::IO, init);
  UniformScheduler sched(n);
  Rng rng(bench_seed(2));
  std::size_t step = 0;
  for (auto _ : state) {
    sys.interact(sched.next(rng, step++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OneWayNative)->Arg(100)->Arg(1'000'000);

void BM_SknoSimulator(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto o = static_cast<std::size_t>(state.range(1));
  const auto st = exact_majority_states();
  std::vector<State> init(n);
  for (std::size_t i = 0; i < n; ++i)
    init[i] = i % 2 == 0 ? st.big_x : st.big_y;
  SknoSimulator sim(make_exact_majority(), o == 0 ? Model::IT : Model::I3, o,
                    init);
  UniformScheduler sched(n);
  Rng rng(bench_seed(3));
  std::size_t step = 0;
  for (auto _ : state) {
    sim.interact(sched.next(rng, step++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SknoSimulator)->Args({100, 0})->Args({100, 2})->Args({1000, 2});

void BM_SidSimulator(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto st = exact_majority_states();
  std::vector<State> init(n);
  for (std::size_t i = 0; i < n; ++i)
    init[i] = i % 2 == 0 ? st.big_x : st.big_y;
  SidSimulator sim(make_exact_majority(), Model::IO, init);
  UniformScheduler sched(n);
  Rng rng(bench_seed(4));
  std::size_t step = 0;
  for (auto _ : state) {
    sim.interact(sched.next(rng, step++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SidSimulator)->Arg(100)->Arg(10'000);

void BM_SchedulerOnly(benchmark::State& state) {
  UniformScheduler sched(static_cast<std::size_t>(state.range(0)));
  Rng rng(bench_seed(5));
  std::size_t step = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.next(rng, step++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerOnly)->Arg(1'000'000);

}  // namespace
}  // namespace ppfs

BENCHMARK_MAIN();

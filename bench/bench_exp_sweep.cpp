// EXP — wall-clock scaling of the experiment layer's replica runner on an
// embarrassingly parallel grid, plus a determinism cross-check.
//
// The grid is a multi-trial batch-engine sweep (count-space exact majority
// at n = 10^6 — each replica is a fat, independent chunk of work), run at
// 1, 2 and 4 threads. Replica RNG streams are keyed per (point, trial), so
// the three runs must produce byte-identical reports; the speedup:*
// ratios land in BENCH_exp_sweep.json (--json / PPFS_BENCH_JSON) so CI
// tracks the scaling trajectory. On a multicore box 1 -> 4 threads is
// expected near-linear (>= 3x); on fewer hardware threads the ratio
// honestly records whatever the machine can do (hw-concurrency row).
#include <chrono>
#include <thread>

#include "bench_common.hpp"

namespace ppfs {
namespace {

exp::ScenarioGrid scaling_grid() {
  exp::ScenarioGrid g;
  g.workloads = {"exact-majority", "or"};
  g.sizes = {500'000, 1'000'000};
  g.engines = {"batch"};
  g.trials = 4;
  g.seed = bench::bench_seed(20260731);
  return g;
}

struct TimedSweep {
  double seconds = 0.0;
  std::string fingerprint;
};

TimedSweep timed_sweep(const exp::ScenarioGrid& grid, std::size_t threads) {
  exp::RunnerOptions opt;
  opt.threads = threads;
  exp::ReplicaRunner runner(opt);
  const auto start = std::chrono::steady_clock::now();
  const exp::Report report = runner.run_grid(grid);
  const auto stop = std::chrono::steady_clock::now();
  TimedSweep out;
  out.seconds = std::chrono::duration<double>(stop - start).count();
  out.fingerprint = report.fingerprint();
  return out;
}

}  // namespace
}  // namespace ppfs

int main(int argc, char** argv) {
  using namespace ppfs;
  bench::JsonReport json("exp_sweep", argc, argv);
  bench::banner("Experiment-layer sweep scaling (threads 1 / 2 / 4)");

  const exp::ScenarioGrid grid = scaling_grid();
  const std::size_t replicas = grid.points() * grid.trials;
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << grid.points() << " grid points x " << grid.trials
            << " trials = " << replicas << " replicas; hardware threads: "
            << hw << "\n\n";

  const TimedSweep t1 = timed_sweep(grid, 1);
  const TimedSweep t2 = timed_sweep(grid, 2);
  const TimedSweep t4 = timed_sweep(grid, 4);

  TextTable t({"threads", "wall sec", "replicas/sec", "speedup vs 1t",
               "report identical"});
  const auto row = [&](const char* label, const TimedSweep& ts) {
    t.add_row({label, fmt_double(ts.seconds, 2),
               fmt_double(replicas / ts.seconds, 1),
               fmt_double(t1.seconds / ts.seconds, 2),
               fmt_bool(ts.fingerprint == t1.fingerprint)});
  };
  row("1", t1);
  row("2", t2);
  row("4", t4);
  t.print(std::cout);

  const bool deterministic =
      t2.fingerprint == t1.fingerprint && t4.fingerprint == t1.fingerprint;
  std::cout << "\naggregates byte-identical across thread counts: "
            << fmt_bool(deterministic) << "\n";

  json.add_metric("sweep-replicas-per-sec-1t", 1'000'000, "TW",
                  "replicas_per_sec", replicas / t1.seconds);
  json.add_metric("sweep-replicas-per-sec-4t", 1'000'000, "TW",
                  "replicas_per_sec", replicas / t4.seconds);
  json.add_metric("hw-concurrency", 1'000'000, "TW", "threads",
                  static_cast<double>(hw));
  json.add_ratio("speedup:sweep-1to2", 1'000'000, "TW",
                 t1.seconds / t2.seconds);
  json.add_ratio("speedup:sweep-1to4", 1'000'000, "TW",
                 t1.seconds / t4.seconds);
  return deterministic ? 0 : 1;
}

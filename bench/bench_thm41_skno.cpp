// THM41 — regenerates the positive content of Theorem 4.1: SKnO simulates
// every two-way protocol in I3/I4 when the total number of omissions is
// bounded by the known o.
//
// Each table is a declarative ScenarioGrid (src/exp/scenario.hpp) executed
// on all cores by the replica runner and rendered through the shared
// exp::Report writer; matching verification and the simulator memory
// counters arrive as report extras (matching_ok / overhead / max_bits /
// max_queue).
//
//  Table 1: workload sweep under I3 with a budgeted adversary — verified
//           convergence + matching for every library workload.
//  Table 2: interaction overhead (physical interactions per simulated
//           two-way step) as a function of o and n. Expected shape: grows
//           roughly linearly in o (each transaction ships 2(o+1) tokens)
//           and increases with n (token routing through third parties).
//  Table 3: memory — max tokens held by one agent and the implied bits
//           under the counting representation, against the paper's
//           Theta(log n * |Q_P| * (o+1)) bound.
#include <cmath>

#include "bench_common.hpp"

namespace ppfs {
namespace {

void workload_table() {
  bench::banner("THM 4.1 / Table 1: SKnO(I3) over the workload suite, n=8, o=2");
  exp::ScenarioGrid g;
  g.workloads = bench::workload_names(standard_workloads(8));
  g.sizes = {8};
  g.models = {"I3"};
  g.adversaries = {"budget:2:0.05"};
  g.sims = {"skno:o=2"};
  g.engines = {"native"};
  g.verify_matching = true;
  g.max_steps = 2'000'000;
  g.trials = 4;
  g.seed = bench::bench_seed(4100);
  bench::run_grid(g).print_table(std::cout);
}

void overhead_table() {
  bench::banner("THM 4.1 / Table 2: overhead (interactions per simulated step)");
  exp::Report report;
  for (const std::size_t o : {0, 1, 2, 3}) {
    exp::ScenarioGrid g;
    g.workloads = {"pairing"};
    g.sizes = {4, 8, 16};
    // I4 with o = 0 is the same chain as I3 fault-free; skip the duplicate.
    g.models = o == 0 ? std::vector<std::string>{"I3"}
                      : std::vector<std::string>{"I3", "I4"};
    g.adversaries = {"budget:" + std::to_string(o) + ":0.02"};
    g.sims = {"skno:o=" + std::to_string(o)};
    g.engines = {"native"};
    g.verify_matching = true;
    g.max_steps = 12'000'000;
    g.trials = 2;
    g.seed = bench::bench_seed(4200) + o;
    report.extend(bench::run_grid(g));
  }
  report.print_table(std::cout);
  std::cout << "\nShape to observe: overhead grows with o (token redundancy) "
               "and with n (relayed token routing).\n";
}

void memory_table() {
  bench::banner("THM 4.1 / Table 3: memory vs the Theta(log n |Q_P| (o+1)) bound");
  exp::Report report;
  for (const std::size_t o : {1, 2}) {
    exp::ScenarioGrid g;
    g.workloads = {"pairing"};  // |Q_P| = 4
    g.sizes = {4, 8, 16, 32, 64};
    g.models = {"I3"};
    g.adversaries = {"budget:" + std::to_string(o) + ":0.02"};
    g.sims = {"skno:o=" + std::to_string(o)};
    g.engines = {"native"};
    g.fixed_steps = 100'000;
    g.trials = 2;
    g.seed = bench::bench_seed(4300) + o;
    report.extend(bench::run_grid(g));
  }
  report.print_table(std::cout);
  std::cout << "\nBound ~ log2(n) * |Q_P| * (o+1) bits, |Q_P| = 4:";
  for (const std::size_t n : {4, 8, 16, 32, 64}) {
    std::cout << "  n=" << n << ": o=1 -> "
              << fmt_double(std::log2(static_cast<double>(n)) * 4 * 2, 0)
              << ", o=2 -> "
              << fmt_double(std::log2(static_cast<double>(n)) * 4 * 3, 0);
  }
  std::cout << "\nShape to observe: max_bits grows slowly (logarithmically) "
               "in n for fixed |Q_P| and o — the counting representation of "
               "the paper's Theta(log n |Q_P| (o+1)) bound.\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Theorem 4.1 (SKnO in I3/I4)");
  ppfs::workload_table();
  ppfs::overhead_table();
  ppfs::memory_table();
  return 0;
}

// THM41 — regenerates the positive content of Theorem 4.1: SKnO simulates
// every two-way protocol in I3/I4 when the total number of omissions is
// bounded by the known o.
//
//  Table 1: workload sweep under I3 with a budgeted adversary — verified
//           convergence + matching for every library workload.
//  Table 2: interaction overhead (physical interactions per simulated
//           two-way step) as a function of o and n. Expected shape: grows
//           roughly linearly in o (each transaction ships 2(o+1) tokens)
//           and increases with n (token routing through third parties).
//  Table 3: memory — max tokens held by one agent and the implied bits
//           under the counting representation, against the paper's
//           Theta(log n * |Q_P| * (o+1)) bound.
#include <cmath>

#include "bench_common.hpp"
#include "sim/skno.hpp"

namespace ppfs {
namespace {

void workload_table() {
  bench::banner("THM 4.1 / Table 1: SKnO(I3) over the workload suite, n=8, o=2");
  TextTable t({"workload", "converged", "interactions", "omissions",
               "sim pairs", "matching"});
  const std::size_t n = 8, o = 2;
  for (const Workload& w : standard_workloads(n)) {
    SknoSimulator sim(w.protocol, Model::I3, o, w.initial);
    auto sched = bench::budget_adversary(n, 0.05, o);
    Rng rng(4100);
    RunOptions opt;
    opt.max_steps = 2'000'000;
    const auto m = bench::measure_simulation(sim, w, *sched, rng, opt, 4 * n);
    t.add_row({w.name, fmt_bool(m.converged), std::to_string(m.interactions),
               std::to_string(m.omissions), std::to_string(m.simulated_pairs),
               m.matching_ok ? "ok" : "FAILED"});
  }
  t.print(std::cout);
}

void overhead_table() {
  bench::banner("THM 4.1 / Table 2: overhead (interactions per simulated step)");
  TextTable t({"model", "n", "o", "overhead", "sim pairs"});
  for (Model model : {Model::I3, Model::I4}) {
    for (std::size_t n : {4, 8, 16}) {
      for (std::size_t o : {0, 1, 2, 3}) {
        if (model == Model::I4 && o == 0) continue;  // same as I3 fault-free
        const Workload w = core_workloads(n)[3];     // pairing
        SknoSimulator sim(w.protocol, model, o, w.initial);
        auto sched = bench::budget_adversary(n, 0.02, o);
        Rng rng(4200 + n * 10 + o);
        RunOptions opt;
        opt.max_steps = 12'000'000;
        const auto m = bench::measure_simulation(sim, w, *sched, rng, opt, 4 * n);
        t.add_row({model_name(model), std::to_string(n), std::to_string(o),
                   m.converged ? fmt_double(m.overhead, 1) : "no-conv",
                   std::to_string(m.simulated_pairs)});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nShape to observe: overhead grows with o (token redundancy) "
               "and with n (relayed token routing).\n";
}

void memory_table() {
  bench::banner("THM 4.1 / Table 3: memory vs the Theta(log n |Q_P| (o+1)) bound");
  TextTable t({"n", "o", "|Q_P|", "max tokens/agent", "max bits/agent",
               "bound ~ log2(n)*|Q_P|*(o+1)"});
  for (std::size_t n : {4, 8, 16, 32, 64}) {
    for (std::size_t o : {1, 2}) {
      const Workload w = core_workloads(n)[3];  // pairing, |Q_P| = 4
      SknoSimulator sim(w.protocol, Model::I3, o, w.initial);
      auto sched = bench::budget_adversary(n, 0.02, o);
      Rng rng(4300 + n + o);
      (void)run_steps(sim, *sched, rng, 100'000);
      std::size_t max_bits = 0;
      for (AgentId a = 0; a < n; ++a)
        max_bits = std::max(max_bits, sim.memory_bits(a));
      const double bound = std::log2(static_cast<double>(n)) *
                           static_cast<double>(w.protocol->num_states()) *
                           static_cast<double>(o + 1);
      t.add_row({std::to_string(n), std::to_string(o),
                 std::to_string(w.protocol->num_states()),
                 std::to_string(sim.stats().max_queue), std::to_string(max_bits),
                 fmt_double(bound, 0)});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape to observe: bits grow slowly (logarithmically) in n "
               "for fixed |Q_P| and o — the counting representation of the "
               "paper's Theta(log n |Q_P| (o+1)) bound.\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Theorem 4.1 (SKnO in I3/I4)");
  ppfs::workload_table();
  ppfs::overhead_table();
  ppfs::memory_table();
  return 0;
}

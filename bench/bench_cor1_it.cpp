// COR1 — regenerates Corollary 1: with o = 0, SKnO simulates every
// two-way protocol in the (non-omissive) Immediate Transmission model with
// Theta(|Q_P| log n) bits per agent.
//
//  Table 1: workload sweep in IT.
//  Table 2: memory scaling in n for fixed |Q_P| (log-like growth of bits).
//  Table 3: memory scaling in |Q_P| for fixed n, using the linear-
//           threshold family to grow the simulated state space.
#include <cmath>

#include "bench_common.hpp"
#include "protocols/linear.hpp"
#include "sim/skno.hpp"

namespace ppfs {
namespace {

void workload_table() {
  bench::banner("COR 1 / Table 1: SKnO(IT, o=0) over the workload suite, n=8");
  TextTable t({"workload", "converged", "interactions", "sim pairs", "overhead",
               "matching"});
  const std::size_t n = 8;
  for (const Workload& w : standard_workloads(n)) {
    SknoSimulator sim(w.protocol, Model::IT, 0, w.initial);
    UniformScheduler sched(n);
    Rng rng(111);
    RunOptions opt;
    opt.max_steps = 2'000'000;
    const auto m = bench::measure_simulation(sim, w, sched, rng, opt, 4 * n);
    t.add_row({w.name, fmt_bool(m.converged), std::to_string(m.interactions),
               std::to_string(m.simulated_pairs), fmt_double(m.overhead, 1),
               m.matching_ok ? "ok" : "FAILED"});
  }
  t.print(std::cout);
  std::cout << "\nWith constant memory IT is strictly weaker than TW "
               "(Angluin et al. 2005); Corollary 1's point is that "
               "Theta(|Q_P| log n) extra bits close the gap.\n";
}

void memory_vs_n() {
  bench::banner("COR 1 / Table 2: bits per agent vs n (|Q_P| fixed)");
  TextTable t({"n", "max tokens/agent", "max bits/agent", "log2(n)"});
  for (std::size_t n : {4, 8, 16, 32, 64, 128, 256}) {
    const Workload w = core_workloads(n)[3];  // pairing, |Q_P| = 4
    SknoSimulator sim(w.protocol, Model::IT, 0, w.initial);
    UniformScheduler sched(n);
    Rng rng(222 + n);
    (void)run_steps(sim, sched, rng, 40'000 + 400 * n);
    std::size_t max_bits = 0;
    for (AgentId a = 0; a < n; ++a)
      max_bits = std::max(max_bits, sim.memory_bits(a));
    t.add_row({std::to_string(n), std::to_string(sim.stats().max_queue),
               std::to_string(max_bits),
               fmt_double(std::log2(static_cast<double>(n)), 1)});
  }
  t.print(std::cout);
}

void memory_vs_qp() {
  bench::banner("COR 1 / Table 3: bits per agent vs |Q_P| (n fixed at 16)");
  TextTable t({"protocol", "|Q_P|", "max bits/agent"});
  const std::size_t n = 16;
  for (std::uint32_t k : {2, 4, 8, 16, 32}) {
    const LinearThresholdSpec spec{{0, 1}, k};
    auto p = make_linear_threshold(spec);
    std::vector<State> init;
    for (std::size_t i = 0; i < n; ++i)
      init.push_back(linear_threshold_input(spec, i % 2));
    SknoSimulator sim(p, Model::IT, 0, init);
    UniformScheduler sched(n);
    Rng rng(333 + k);
    (void)run_steps(sim, sched, rng, 60'000);
    std::size_t max_bits = 0;
    for (AgentId a = 0; a < n; ++a)
      max_bits = std::max(max_bits, sim.memory_bits(a));
    t.add_row({p->name(), std::to_string(p->num_states()),
               std::to_string(max_bits)});
  }
  t.print(std::cout);
  std::cout << "\nShape to observe: bits grow with the simulated state-space "
               "size (token tags) and only logarithmically with n.\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Corollary 1 (IT simulation, o = 0)");
  ppfs::workload_table();
  ppfs::memory_vs_n();
  ppfs::memory_vs_qp();
  return 0;
}

// COR1 — regenerates Corollary 1: with o = 0, SKnO simulates every
// two-way protocol in the (non-omissive) Immediate Transmission model with
// Theta(|Q_P| log n) bits per agent.
//
// Tables 1–2 are declarative ScenarioGrids; Table 3 sweeps a programmatic
// protocol family (linear thresholds of growing |Q_P|) through the same
// experiment layer via ScenarioSpec::custom, so all three render through
// the shared exp::Report writer.
//
//  Table 1: workload sweep in IT.
//  Table 2: memory scaling in n for fixed |Q_P| (log-like growth of bits).
//  Table 3: memory scaling in |Q_P| for fixed n, using the linear-
//           threshold family to grow the simulated state space.
#include <cmath>

#include "bench_common.hpp"
#include "protocols/linear.hpp"

namespace ppfs {
namespace {

void workload_table() {
  bench::banner("COR 1 / Table 1: SKnO(IT, o=0) over the workload suite, n=8");
  exp::ScenarioGrid g;
  g.workloads = bench::workload_names(standard_workloads(8));
  g.sizes = {8};
  g.models = {"IT"};
  g.sims = {"skno:o=0"};
  g.engines = {"native"};
  g.verify_matching = true;
  g.max_steps = 2'000'000;
  g.trials = 4;
  g.seed = bench::bench_seed(111);
  bench::run_grid(g).print_table(std::cout);
  std::cout << "\nWith constant memory IT is strictly weaker than TW "
               "(Angluin et al. 2005); Corollary 1's point is that "
               "Theta(|Q_P| log n) extra bits close the gap.\n";
}

void memory_vs_n() {
  bench::banner("COR 1 / Table 2: bits per agent vs n (|Q_P| fixed)");
  // The mixing budget grows with n (40'000 + 400 n in the original
  // harness), so each size is its own one-point grid stitched into one
  // report.
  exp::Report report;
  for (const std::size_t n : {4, 8, 16, 32, 64, 128, 256}) {
    exp::ScenarioGrid g;
    g.workloads = {"pairing"};  // |Q_P| = 4
    g.sizes = {n};
    g.models = {"IT"};
    g.sims = {"skno:o=0"};
    g.engines = {"native"};
    g.fixed_steps = 40'000 + 400 * n;
    g.trials = 2;
    g.seed = bench::bench_seed(222) + n;
    report.extend(bench::run_grid(g));
  }
  report.print_table(std::cout);
  std::cout << "\nCompare max_bits against log2(n): 2.0 at n=4 up to 8.0 at "
               "n=256.\n";
}

void memory_vs_qp() {
  bench::banner("COR 1 / Table 3: bits per agent vs |Q_P| (n fixed at 16)");
  const std::size_t n = 16;
  exp::Report report;
  exp::ReplicaRunner runner;
  for (const std::uint32_t k : {2, 4, 8, 16, 32}) {
    const LinearThresholdSpec spec{{0, 1}, k};
    auto p = make_linear_threshold(spec);
    auto w = std::make_shared<Workload>();
    w->name = p->name() + "(|Q|=" + std::to_string(p->num_states()) + ")";
    w->protocol = p;
    for (std::size_t i = 0; i < n; ++i)
      w->initial.push_back(linear_threshold_input(spec, i % 2));

    exp::ScenarioSpec s;
    s.workload = w->name;
    s.custom = std::move(w);
    s.n = n;
    s.model = Model::IT;
    s.sim = "skno:o=0";
    s.engine = "native";
    s.fixed_steps = 60'000;
    s.trials = 2;
    s.seed = bench::bench_seed(333) + k;
    auto outcome = runner.run(s);
    report.add(std::move(s), std::move(outcome.aggregate),
               std::move(outcome.replicas));
  }
  report.print_table(std::cout);
  std::cout << "\nShape to observe: bits grow with the simulated state-space "
               "size (token tags) and only logarithmically with n.\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Corollary 1 (IT simulation, o = 0)");
  ppfs::workload_table();
  ppfs::memory_vs_n();
  ppfs::memory_vs_qp();
  return 0;
}

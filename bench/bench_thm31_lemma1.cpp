// FIG2+THM31+THM33 — regenerates the impossibility constructions of §3.1.
//
//  Table 1: the Lemma 1 / Figure 2 construction I* executed against SKnO
//           for several omission bounds o: FTT, population, omissions used
//           and the resulting safety violation (critical > producers).
//  Table 2: the crafted sharp attack — exactly o+1 omissions (the minimum
//           that can defeat SKnO) versus budgets 0..o, which stay safe:
//           SKnO's resilience threshold equals its configured bound, the
//           executable content of Theorem 3.3 (graceful degradation).
#include "attack/lemma1.hpp"
#include "attack/skno_attack.hpp"
#include "bench_common.hpp"
#include "protocols/pairing.hpp"
#include "sim/skno.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

SimFactory skno_factory(std::size_t o) {
  auto protocol = make_pairing_protocol();
  return [protocol, o](std::vector<State> init) -> std::unique_ptr<Simulator> {
    return std::make_unique<SknoSimulator>(protocol, Model::I3, o, std::move(init));
  };
}

void lemma1_table() {
  bench::banner(
      "THM 3.1 / Table 1: Lemma 1 construction I* vs SKnO(I3, o) on Pairing");
  TextTable t({"o", "FTT t", "agents 2t+2", "producers t", "script len",
               "omissions", "critical", "safety violated"});
  for (std::size_t o = 1; o <= 4; ++o) {
    const auto st = pairing_states();
    Lemma1Options opt;
    opt.max_ftt_depth = 2 * o + 4;
    opt.gf_suffix = 2'000;
    const auto rep =
        run_lemma1_attack(skno_factory(o), st.producer, st.consumer, opt);
    if (!rep) {
      t.add_row({std::to_string(o), "-", "-", "-", "-", "-", "-",
                 "construction failed"});
      continue;
    }
    t.add_row({std::to_string(o), std::to_string(rep->ftt),
               std::to_string(rep->agents), std::to_string(rep->producers),
               std::to_string(rep->script_len), std::to_string(rep->omissions),
               std::to_string(rep->critical), fmt_bool(rep->safety_violated)});
  }
  t.print(std::cout);
  std::cout << "\nPaper: any simulator fails once omissions reach its FTT "
               "(Lemma 1); the run has finitely many omissions, so even the "
               "benign NO adversary defeats it (Theorem 3.1).\n";
}

void threshold_table() {
  bench::banner(
      "THM 3.3 / Table 2: sharp resilience threshold of SKnO (crafted attack)");
  TextTable t({"o (bound)", "omission budget", "critical", "producers",
               "safety violated"});
  for (std::size_t o = 1; o <= 3; ++o) {
    for (std::size_t budget = 0; budget <= o + 1; ++budget) {
      const auto plan = build_skno_attack(o);
      std::vector<Interaction> script;
      std::size_t used = 0;
      for (const auto& ia : plan.script) {
        if (ia.omissive) {
          if (used == budget) continue;
          ++used;
        }
        script.push_back(ia);
      }
      SknoSimulator sim(make_pairing_protocol(), Model::I3, o, plan.initial);
      PairingMonitor mon(sim.projection());
      for (const auto& ia : script) {
        sim.interact(ia);
        mon.observe(sim.projection());
      }
      t.add_row({std::to_string(o), std::to_string(budget),
                 std::to_string(mon.max_critical()),
                 std::to_string(mon.producers()),
                 fmt_bool(mon.safety_violated())});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape to observe: safety holds for every budget <= o and "
               "breaks at exactly o+1 — no graceful-degradation threshold "
               "above the known bound exists (Theorem 3.3).\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner(
      "Reproducing Lemma 1 / Theorems 3.1 and 3.3 (Figure 2 construction)");
  ppfs::lemma1_table();
  ppfs::threshold_table();
  return 0;
}

// Shared glue for the experiment harnesses in bench/: convergence drivers
// that return rich per-run measurements, used to regenerate the paper's
// figures as text tables.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/runner.hpp"
#include "obs/metrics.hpp"
#include "engine/workload_runner.hpp"
#include "exp/replica_runner.hpp"
#include "exp/report.hpp"
#include "exp/scenario.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "verify/matching.hpp"

namespace ppfs::bench {

// Deterministic seeding sweep: the PPFS_SEED environment variable, when set
// to a decimal integer, overrides every bench's default seed so perf runs
// are reproducible and comparable across machines (see README.md).
inline std::uint64_t bench_seed(std::uint64_t fallback) {
  if (const char* s = std::getenv("PPFS_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end != s && *end == '\0') return v;
  }
  return fallback;
}

// Run a declarative grid on all cores and render it through the shared
// report writer — the paper-table harnesses declare ScenarioGrids and call
// this instead of hand-rolling sweep loops and table printing.
inline exp::Report run_grid(const exp::ScenarioGrid& grid) {
  return exp::ReplicaRunner().run_grid(grid);
}

// Registry workload names for a grid's workload axis.
inline std::vector<std::string> workload_names(const std::vector<Workload>& ws) {
  std::vector<std::string> names;
  names.reserve(ws.size());
  for (const Workload& w : ws) names.push_back(w.name);
  return names;
}

struct SimMeasurement {
  bool converged = false;
  std::size_t interactions = 0;    // physical interactions driven
  std::size_t omissions = 0;
  std::size_t simulated_pairs = 0; // matched simulated two-way interactions
  std::size_t unmatched = 0;
  bool matching_ok = false;
  double overhead = 0.0;           // interactions per simulated pair
};

// Drive `sim` on workload `w` under `sched` until the workload's probe
// stabilizes, then verify the matching.
inline SimMeasurement measure_simulation(Simulator& sim, const Workload& w,
                                         Scheduler& sched, Rng& rng,
                                         const RunOptions& opt,
                                         std::size_t max_unmatched) {
  auto counts_probe = workload_counts_probe(w);
  auto probe = [&](const Simulator& s) {
    std::vector<std::size_t> counts(w.protocol->num_states(), 0);
    for (State q : s.projection()) ++counts[q];
    return counts_probe(counts, *w.protocol);
  };
  const RunResult res = run_until(sim, sched, rng, probe, opt);
  const MatchingReport rep = verify_simulation(sim, max_unmatched);
  SimMeasurement m;
  m.converged = res.converged;
  m.interactions = res.steps;
  m.omissions = res.omissions;
  m.simulated_pairs = rep.pairs;
  m.unmatched = rep.unmatched;
  m.matching_ok = rep.ok;
  m.overhead = rep.pairs > 0 ? static_cast<double>(res.steps) / rep.pairs : 0.0;
  return m;
}

inline std::unique_ptr<Scheduler> budget_adversary(std::size_t n, double rate,
                                                   std::size_t max_omissions) {
  AdversaryParams ap;
  ap.kind = AdversaryKind::Budget;
  ap.rate = rate;
  ap.max_omissions = max_omissions;
  return std::make_unique<OmissionAdversary>(std::make_unique<UniformScheduler>(n),
                                             n, ap);
}

inline std::unique_ptr<Scheduler> uo_adversary(std::size_t n, double rate) {
  AdversaryParams ap;
  ap.kind = AdversaryKind::UO;
  ap.rate = rate;
  return std::make_unique<OmissionAdversary>(std::make_unique<UniformScheduler>(n),
                                             n, ap);
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

// Machine-readable bench output: construct with the bench's name and the
// raw argv; if "--json" is among the arguments (or PPFS_BENCH_JSON is set)
// every add()ed measurement is written to BENCH_<name>.json on
// destruction, so the perf trajectory can be tracked across PRs:
//
//   { "bench": "engine_omissive", "results": [
//     { "name": "...", "n": 1000000, "model": "I2",
//       "interactions_per_sec": 1.2e9 }, ... ] }
//
// Throughput rows carry "interactions_per_sec"; dimensionless ratio rows
// (add_ratio — the "speedup:*" entries) carry "speedup" instead, so
// consumers never mistake a ratio for a rate.
class JsonReport {
 public:
  JsonReport(std::string bench_name, int argc, char** argv)
      : bench_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--json") enabled_ = true;
    if (std::getenv("PPFS_BENCH_JSON") != nullptr) enabled_ = true;
  }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(const std::string& name, std::size_t n, const std::string& model,
           double interactions_per_sec) {
    add_row(name, n, model, "interactions_per_sec", interactions_per_sec);
  }

  // A dimensionless ratio (e.g. batch/step-wise speedup).
  void add_ratio(const std::string& name, std::size_t n,
                 const std::string& model, double speedup) {
    add_row(name, n, model, "speedup", speedup);
  }

  // A measurement in an explicitly named unit (rows that are neither
  // interaction rates nor ratios — replica throughput, thread counts).
  void add_metric(const std::string& name, std::size_t n,
                  const std::string& model, const char* key, double value) {
    add_row(name, n, model, key, value);
  }

  ~JsonReport() {
    if (!enabled_) return;
    const std::string path = "BENCH_" + bench_ + ".json";
    std::ofstream out(path);
    out << "{ \"bench\": \"" << bench_ << "\",\n  \"provenance\": "
        << provenance_json() << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i)
      out << rows_[i] << (i + 1 < rows_.size() ? ",\n" : "\n");
    out << "] }\n";
    std::cout << "wrote " << path << " (" << rows_.size() << " rows)\n";
  }

  // Build provenance: perf numbers are only comparable across PRs when the
  // toolchain and build mode are pinned alongside them. The macros come
  // from CMake (per-bench-target compile definitions); a build outside
  // CMake degrades to "unknown" instead of breaking.
  [[nodiscard]] static std::string provenance_json() {
#ifdef PPFS_GIT_COMMIT
    const char* commit = PPFS_GIT_COMMIT;
#else
    const char* commit = "unknown";
#endif
#ifdef PPFS_BUILD_TYPE
    const char* build_type = PPFS_BUILD_TYPE;
#else
    const char* build_type = "unknown";
#endif
#ifdef PPFS_COMPILER
    const char* compiler = PPFS_COMPILER;
#else
    const char* compiler = "unknown";
#endif
#ifdef PPFS_CXX_FLAGS
    const char* flags = PPFS_CXX_FLAGS;
#else
    const char* flags = "unknown";
#endif
    std::ostringstream out;
    out << "{ \"commit\": \"" << commit << "\", \"build_type\": \""
        << build_type << "\", \"compiler\": \"" << compiler
        << "\", \"cxx_flags\": \"" << flags << "\", \"metrics\": "
        << (PPFS_METRICS ? "true" : "false") << ", \"hw_concurrency\": "
        << std::thread::hardware_concurrency() << " }";
    return out.str();
  }

 private:
  void add_row(const std::string& name, std::size_t n, const std::string& model,
               const char* key, double value) {
    if (!enabled_) return;
    std::ostringstream row;
    row << "    { \"name\": \"" << name << "\", \"n\": " << n
        << ", \"model\": \"" << model << "\", \"" << key << "\": " << value
        << " }";
    rows_.push_back(row.str());
  }

  std::string bench_;
  bool enabled_ = false;
  std::vector<std::string> rows_;
};

}  // namespace ppfs::bench

// Shared glue for the experiment harnesses in bench/: convergence drivers
// that return rich per-run measurements, used to regenerate the paper's
// figures as text tables.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>

#include "engine/runner.hpp"
#include "engine/workload_runner.hpp"
#include "protocols/registry.hpp"
#include "sched/adversary.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "verify/matching.hpp"

namespace ppfs::bench {

// Deterministic seeding sweep: the PPFS_SEED environment variable, when set
// to a decimal integer, overrides every bench's default seed so perf runs
// are reproducible and comparable across machines (see README.md).
inline std::uint64_t bench_seed(std::uint64_t fallback) {
  if (const char* s = std::getenv("PPFS_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end != s && *end == '\0') return v;
  }
  return fallback;
}

struct SimMeasurement {
  bool converged = false;
  std::size_t interactions = 0;    // physical interactions driven
  std::size_t omissions = 0;
  std::size_t simulated_pairs = 0; // matched simulated two-way interactions
  std::size_t unmatched = 0;
  bool matching_ok = false;
  double overhead = 0.0;           // interactions per simulated pair
};

// Drive `sim` on workload `w` under `sched` until the workload's probe
// stabilizes, then verify the matching.
inline SimMeasurement measure_simulation(Simulator& sim, const Workload& w,
                                         Scheduler& sched, Rng& rng,
                                         const RunOptions& opt,
                                         std::size_t max_unmatched) {
  auto counts_probe = workload_counts_probe(w);
  auto probe = [&](const Simulator& s) {
    std::vector<std::size_t> counts(w.protocol->num_states(), 0);
    for (State q : s.projection()) ++counts[q];
    return counts_probe(counts, *w.protocol);
  };
  const RunResult res = run_until(sim, sched, rng, probe, opt);
  const MatchingReport rep = verify_simulation(sim, max_unmatched);
  SimMeasurement m;
  m.converged = res.converged;
  m.interactions = res.steps;
  m.omissions = res.omissions;
  m.simulated_pairs = rep.pairs;
  m.unmatched = rep.unmatched;
  m.matching_ok = rep.ok;
  m.overhead = rep.pairs > 0 ? static_cast<double>(res.steps) / rep.pairs : 0.0;
  return m;
}

inline std::unique_ptr<Scheduler> budget_adversary(std::size_t n, double rate,
                                                   std::size_t max_omissions) {
  AdversaryParams ap;
  ap.kind = AdversaryKind::Budget;
  ap.rate = rate;
  ap.max_omissions = max_omissions;
  return std::make_unique<OmissionAdversary>(std::make_unique<UniformScheduler>(n),
                                             n, ap);
}

inline std::unique_ptr<Scheduler> uo_adversary(std::size_t n, double rate) {
  AdversaryParams ap;
  ap.kind = AdversaryKind::UO;
  ap.rate = rate;
  return std::make_unique<OmissionAdversary>(std::make_unique<UniformScheduler>(n),
                                             n, ap);
}

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace ppfs::bench

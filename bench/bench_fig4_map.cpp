// FIG4 — regenerates Figure 4, the paper's map of results: for each of the
// four assumption panels and each of the ten interaction models, the cell
// is decided by actually running the corresponding experiment:
//
//   GREEN  — the designated simulator converges on a workload under the
//            panel's assumption (with omissions where the model has them)
//            and the perfect-matching verifier accepts the run;
//   RED    — the paper's counterexample construction executes and
//            exhibits the violation (safety break or permanent stall);
//   ?      — T2 with knowledge of omissions: open problem in the paper;
//   cited  — IO in panels 1: asserted red by the paper; no constructive
//            counterexample is given (see EXPERIMENTS.md).
#include "attack/lemma1.hpp"
#include "attack/skno_attack.hpp"
#include "attack/thm32.hpp"
#include "bench_common.hpp"
#include "protocols/pairing.hpp"
#include "sim/naming.hpp"
#include "sim/sid.hpp"
#include "sim/skno.hpp"
#include "sim/tw_naive.hpp"
#include "verify/monitors.hpp"

namespace ppfs {
namespace {

struct CellResult {
  std::string verdict;   // GREEN / RED / ?
  std::string evidence;  // what ran and what it showed
};

CellResult green_by_simulation(std::unique_ptr<Simulator> sim, const Workload& w,
                               double uo_rate, std::size_t budget,
                               const std::string& label) {
  const std::size_t n = w.initial.size();
  std::unique_ptr<Scheduler> sched;
  if (uo_rate > 0 && budget == SIZE_MAX) {
    sched = bench::uo_adversary(n, uo_rate);
  } else if (uo_rate > 0) {
    sched = bench::budget_adversary(n, uo_rate, budget);
  } else {
    sched = std::make_unique<UniformScheduler>(n);
  }
  Rng rng(777);
  RunOptions opt;
  opt.max_steps = 3'000'000;
  const auto m = bench::measure_simulation(*sim, w, *sched, rng, opt, 4 * n);
  if (m.converged && m.matching_ok)
    return {"GREEN", label + ": converged, matching ok (" +
                          std::to_string(m.simulated_pairs) + " pairs)"};
  return {"BROKEN", label + ": convergence=" + fmt_bool(m.converged) +
                        " matching=" + fmt_bool(m.matching_ok)};
}

CellResult red_by_lemma1(std::size_t o, const std::string& label) {
  auto protocol = make_pairing_protocol();
  SimFactory f = [protocol, o](std::vector<State> init) -> std::unique_ptr<Simulator> {
    return std::make_unique<SknoSimulator>(protocol, Model::I3, o, std::move(init));
  };
  const auto st = pairing_states();
  Lemma1Options opt;
  opt.max_ftt_depth = 2 * o + 4;
  const auto rep = run_lemma1_attack(f, st.producer, st.consumer, opt);
  if (rep && rep->safety_violated)
    return {"RED", label + ": Lemma-1 run with FTT=" + std::to_string(rep->ftt) +
                       " omissions makes " + std::to_string(rep->critical) + "/" +
                       std::to_string(rep->producers) + " critical"};
  return {"UNPROVEN", label};
}

CellResult red_by_t_model(Model m) {
  // One starter-side omission against the naive wrapper (all T-models).
  const auto st = pairing_states();
  TwSimulator sim(make_pairing_protocol(), m,
                  {st.consumer, st.producer, st.consumer});
  PairingMonitor mon(sim.projection());
  sim.interact(Interaction{1, 0, true, OmitSide::Starter});
  mon.observe(sim.projection());
  sim.interact(Interaction{1, 2, false});
  mon.observe(sim.projection());
  if (mon.safety_violated())
    return {"RED", "Thm 3.1/3.2: one starter-side omission double-spends a "
                   "producer (critical=" +
                       std::to_string(mon.max_critical()) + ", producers=1)"};
  return {"UNPROVEN", "t-model demo"};
}

CellResult red_by_stall(Model m) {
  const auto rep = run_oneway_no1_demo(m, 2, 60'000, 99);
  if (rep.stalled)
    return {"RED", "Thm 3.2: one omission, token candidate deadlocks (" +
                       rep.detail + ")"};
  return {"UNPROVEN", "stall demo"};
}

Workload quick_workload(std::size_t n) { return core_workloads(n)[1]; }

void panel_infinite_memory() {
  bench::banner("FIG4 / panel 1: infinite memory, no extra assumptions");
  TextTable t({"model", "verdict", "evidence"});
  const std::size_t n = 6;
  for (Model m : kAllModels) {
    CellResult c{"?", ""};
    switch (m) {
      case Model::TW:
        c = green_by_simulation(
            std::make_unique<TwSimulator>(quick_workload(n).protocol, Model::TW,
                                          quick_workload(n).initial),
            quick_workload(n), 0.0, 0, "identity wrapper");
        break;
      case Model::IT:
        c = green_by_simulation(
            std::make_unique<SknoSimulator>(quick_workload(n).protocol, Model::IT,
                                            0, quick_workload(n).initial),
            quick_workload(n), 0.0, 0, "Cor. 1: SKnO o=0");
        break;
      case Model::IO:
        c = {"RED", "asserted by the paper's Fig. 4 (no constructive "
                    "counterexample given; see EXPERIMENTS.md)"};
        break;
      case Model::T1:
      case Model::T2:
      case Model::T3:
        c = red_by_t_model(m);
        break;
      case Model::I1:
      case Model::I2:
        c = red_by_stall(m);
        break;
      case Model::I3:
      case Model::I4:
        // Without knowledge of o, no bound works: any configured bound o
        // falls to the Lemma-1 construction with FTT(o) omissions.
        c = red_by_lemma1(2, "Thm 3.1 (bound unknowable)");
        break;
    }
    t.add_row({model_name(m), c.verdict, c.evidence});
  }
  t.print(std::cout);
}

void panel_knowledge_of_omissions() {
  bench::banner("FIG4 / panel 2: known bound o on the number of omissions");
  TextTable t({"model", "verdict", "evidence"});
  const std::size_t n = 6;
  const std::size_t o = 2;
  for (Model m : kAllModels) {
    CellResult c{"?", ""};
    switch (m) {
      case Model::TW:
        c = green_by_simulation(
            std::make_unique<TwSimulator>(quick_workload(n).protocol, Model::TW,
                                          quick_workload(n).initial),
            quick_workload(n), 0.0, 0, "identity wrapper");
        break;
      case Model::IT:
        c = green_by_simulation(
            std::make_unique<SknoSimulator>(quick_workload(n).protocol, Model::IT,
                                            0, quick_workload(n).initial),
            quick_workload(n), 0.0, 0, "Cor. 1: SKnO o=0");
        break;
      case Model::I3:
      case Model::I4:
        c = green_by_simulation(
            std::make_unique<SknoSimulator>(quick_workload(n).protocol, m, o,
                                            quick_workload(n).initial),
            quick_workload(n), 0.05, o, "Thm 4.1: SKnO o=" + std::to_string(o));
        break;
      case Model::T3:
        c = green_by_simulation(
            std::make_unique<SknoSimulator>(quick_workload(n).protocol, Model::T3,
                                            o, quick_workload(n).initial),
            quick_workload(n), 0.05, o,
            "Thm 4.1 via the I3 -> T3 embedding, run natively in T3");
        break;
      case Model::T2:
        c = {"?", "open problem (paper, conclusion)"};
        break;
      case Model::T1:
        c = red_by_t_model(m);
        break;
      case Model::I1:
      case Model::I2:
        c = red_by_stall(m);
        break;
      case Model::IO:
        c = {"RED", "Thm 3.2: omissive IO is the g = id case of I1, which "
                    "falls to a single omission even when o = 1 is known"};
        break;
    }
    t.add_row({model_name(m), c.verdict, c.evidence});
  }
  t.print(std::cout);
}

void panel_assumption_everywhere(const std::string& title, bool naming) {
  bench::banner(title);
  TextTable t({"model", "verdict", "evidence"});
  const std::size_t n = 6;
  for (Model m : kAllModels) {
    const Workload w = quick_workload(n);
    std::unique_ptr<Simulator> sim;
    std::string label;
    if (naming) {
      sim = std::make_unique<NamingSimulator>(w.protocol, m, w.initial);
      label = "Thm 4.6: Nn + SID";
    } else {
      sim = std::make_unique<SidSimulator>(w.protocol, m, w.initial);
      label = "Thm 4.5: SID";
    }
    const double rate = is_omissive(m) ? 0.3 : 0.0;
    const auto c = green_by_simulation(std::move(sim), w, rate,
                                       rate > 0 ? SIZE_MAX : 0, label);
    t.add_row({model_name(m), c.verdict,
               c.evidence + (rate > 0 ? " under UO omissions" : "")});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Figure 4: the map of results");
  ppfs::panel_infinite_memory();
  ppfs::panel_knowledge_of_omissions();
  ppfs::panel_assumption_everywhere("FIG4 / panel 3: unique IDs", false);
  ppfs::panel_assumption_everywhere("FIG4 / panel 4: knowledge of n", true);
  std::cout << "\nLegend: GREEN = simulator ran and verified here; RED = "
               "counterexample executed here (or cited where the paper "
               "gives no construction); ? = open problem.\n";
  return 0;
}

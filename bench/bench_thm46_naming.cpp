// THM46 — regenerates Theorem 4.6 / Lemma 3: knowledge of n alone suffices
// in IO, via the Nn naming protocol composed with SID.
//
// Both tables are declarative ScenarioGrids: Table 1 uses the experiment
// layer's probe=activation mode (the naming simulator's all-activated
// predicate, monotone so stable=1) with the id-increment counter arriving
// as a report extra; Table 2 is the end-to-end matching-verified sweep.
//
//  Table 1: Lemma 3 in numbers — interactions until every agent holds a
//           unique stable id and has activated its SID layer, vs n.
//  Table 2: end-to-end simulation after self-naming (IO and omissive
//           models under UO).
#include "bench_common.hpp"

namespace ppfs {
namespace {

void naming_convergence() {
  bench::banner("THM 4.6 / Table 1: Nn naming convergence (Lemma 3)");
  // Activation only needs some protocol to wrap; pairing is the library's
  // usual choice. Total id increments must come out to n(n-1)/2 — the
  // agent ending with id v was incremented exactly v-1 times. The
  // workload registry (and hence the experiment layer) starts at n = 4,
  // so the pre-refactor n = 2 row is gone; tests/naming_test.cpp still
  // covers the two-agent base case directly.
  exp::ScenarioGrid g;
  g.workloads = {"pairing"};
  g.sizes = {4, 8, 16, 32, 64, 128};
  g.models = {"IO"};
  g.sims = {"naming"};
  g.engines = {"native"};
  g.probe = "activation";
  g.stable_checks = 1;  // activation is monotone
  g.check_every = 32;
  g.max_steps = 60'000'000;
  g.trials = 2;
  g.seed = bench::bench_seed(4601);
  bench::run_grid(g).print_table(std::cout);
  std::cout << "\nShape to observe: id_increments = n(n-1)/2 exactly — i.e. "
               "(n-1)/2 per agent. Wall time is dominated by collisions "
               "becoming rare (coupon-collector style) plus the max_id "
               "gossip.\n";
}

void end_to_end() {
  bench::banner("THM 4.6 / Table 2: Nn + SID end-to-end, n=8");
  exp::Report report;
  for (const Model model : {Model::IO, Model::I1, Model::I3, Model::T1,
                            Model::T3}) {
    exp::ScenarioGrid g;
    g.workloads = bench::workload_names(core_workloads(8));
    g.sizes = {8};
    g.models = {model_name(model)};
    g.adversaries = {is_omissive(model) ? "uo:0.3" : "none"};
    g.sims = {"naming"};
    g.engines = {"native"};
    g.verify_matching = true;
    g.max_unmatched_per_n = 2;  // SID/naming hold the tighter historical bar
    g.max_steps = 4'000'000;
    g.trials = 2;
    g.seed = bench::bench_seed(4602);
    report.extend(bench::run_grid(g));
  }
  report.print_table(std::cout);
  std::cout << "\nThe knowledge-of-n column of Figure 4 is green in every "
               "model: naming is reactor-side only, so omissions cannot "
               "corrupt it, and once max_id = n all ids are provably unique "
               "and stable (pigeonhole, Lemma 3).\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Theorem 4.6 / Lemma 3 (knowledge of n)");
  ppfs::naming_convergence();
  ppfs::end_to_end();
  return 0;
}

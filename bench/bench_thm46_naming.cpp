// THM46 — regenerates Theorem 4.6 / Lemma 3: knowledge of n alone suffices
// in IO, via the Nn naming protocol composed with SID.
//
//  Table 1: Lemma 3 in numbers — interactions until every agent holds a
//           unique stable id and has activated its SID layer, vs n.
//  Table 2: end-to-end simulation after self-naming (IO and omissive
//           models under UO).
#include "bench_common.hpp"
#include "protocols/pairing.hpp"
#include "sim/naming.hpp"

namespace ppfs {
namespace {

void naming_convergence() {
  bench::banner("THM 4.6 / Table 1: Nn naming convergence (Lemma 3)");
  TextTable t({"n", "interactions to all-activated", "id increments",
               "increments per agent"});
  for (std::size_t n : {2, 4, 8, 16, 32, 64, 128}) {
    NamingSimulator sim(make_pairing_protocol(), Model::IO,
                        std::vector<State>(n, pairing_states().consumer));
    UniformScheduler sched(n);
    Rng rng(4601 + n);
    RunOptions opt;
    opt.max_steps = 60'000'000;
    opt.check_every = 32;
    opt.stable_checks = 1;  // activation is monotone
    const auto res = run_until(
        sim, sched, rng,
        [](const NamingSimulator& s) { return s.all_activated(); }, opt);
    const auto incs = sim.naming_stats().id_increments;
    t.add_row({std::to_string(n),
               res.converged ? std::to_string(res.steps) : "no-conv",
               std::to_string(incs),
               fmt_double(static_cast<double>(incs) / static_cast<double>(n), 2)});
  }
  t.print(std::cout);
  std::cout << "\nShape to observe: the agent ending with id v was "
               "incremented exactly v-1 times, so total increments = "
               "n(n-1)/2 — i.e. (n-1)/2 per agent, as measured. Wall time "
               "is dominated by collisions becoming rare (coupon-collector "
               "style) plus the max_id gossip.\n";
}

void end_to_end() {
  bench::banner("THM 4.6 / Table 2: Nn + SID end-to-end, n=8");
  TextTable t({"model", "UO rate", "workload", "converged", "interactions",
               "matching"});
  const std::size_t n = 8;
  for (Model model : {Model::IO, Model::I1, Model::I3, Model::T1, Model::T3}) {
    const double rate = is_omissive(model) ? 0.3 : 0.0;
    for (const Workload& w : core_workloads(n)) {
      NamingSimulator sim(w.protocol, model, w.initial);
      std::unique_ptr<Scheduler> sched =
          rate > 0 ? bench::uo_adversary(n, rate)
                   : std::make_unique<UniformScheduler>(n);
      Rng rng(4602);
      RunOptions opt;
      opt.max_steps = 4'000'000;
      const auto m = bench::measure_simulation(sim, w, *sched, rng, opt, 2 * n);
      t.add_row({model_name(model), fmt_double(rate, 1), w.name,
                 fmt_bool(m.converged), std::to_string(m.interactions),
                 m.matching_ok ? "ok" : "FAILED"});
    }
  }
  t.print(std::cout);
  std::cout << "\nThe knowledge-of-n column of Figure 4 is green in every "
               "model: naming is reactor-side only, so omissions cannot "
               "corrupt it, and once max_id = n all ids are provably unique "
               "and stable (pigeonhole, Lemma 3).\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Reproducing Theorem 4.6 / Lemma 3 (knowledge of n)");
  ppfs::naming_convergence();
  ppfs::end_to_end();
  return 0;
}

// PERF/baseline — native two-way convergence of every library workload:
// the reference numbers every simulator-overhead table divides by, plus a
// population-size scaling sweep (expected Theta(n^2 log n)-ish interaction
// counts for the epidemic-style protocols under uniform scheduling).
#include "bench_common.hpp"

namespace ppfs {
namespace {

void suite_table() {
  bench::banner("Baseline / Table 1: native TW convergence, n = 50");
  TextTable t({"workload", "converged", "interactions", "interactions/n"});
  const std::size_t n = 50;
  for (const Workload& w : standard_workloads(n)) {
    RunOptions opt;
    opt.max_steps = 20'000'000;
    const auto res = run_native_workload(w, 1234, opt);
    t.add_row({w.name, fmt_bool(res.converged), std::to_string(res.steps),
               fmt_double(static_cast<double>(res.steps) / n, 1)});
  }
  t.print(std::cout);
}

void scaling_table() {
  bench::banner("Baseline / Table 2: convergence scaling with n (3 seeds each)");
  TextTable t({"workload family", "n", "mean interactions", "mean/n^2"});
  for (std::size_t n : {10, 20, 40, 80, 160, 320}) {
    for (std::size_t which : {0, 2}) {  // or-epidemic, leader election
      const auto suite = core_workloads(n);
      const Workload& w = suite[which];
      double total = 0;
      int runs = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        RunOptions opt;
        opt.max_steps = 60'000'000;
        const auto res = run_native_workload(w, seed * 97, opt);
        if (res.converged) {
          total += static_cast<double>(res.steps);
          ++runs;
        }
      }
      const double mean = runs ? total / runs : 0;
      t.add_row({w.name, std::to_string(n), fmt_double(mean, 0),
                 fmt_double(mean / (static_cast<double>(n) * n), 3)});
    }
  }
  t.print(std::cout);
  std::cout << "\nShape to observe: epidemics finish in Theta(n log n) "
               "interactions; leader election needs Theta(n^2) (the last "
               "two leaders must meet under uniform scheduling).\n";
}

}  // namespace
}  // namespace ppfs

int main() {
  ppfs::bench::banner("Native two-way baselines");
  ppfs::suite_table();
  ppfs::scaling_table();
  return 0;
}
